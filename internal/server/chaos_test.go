package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/oraclestore"
)

// fetchMetric scrapes one sample (by exact exposition prefix, label set
// included) from /metrics.
func fetchMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, data)
	return 0
}

// fetchHealth decodes GET /healthz.
func fetchHealth(t *testing.T, base string) HealthResponse {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// postRaw posts a schedule request and returns status, decoded error code
// (when not 200) and the Retry-After header.
func postChaos(t *testing.T, base string, body any, hdr map[string]string) (status int, code, retryAfter string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.Unmarshal(data, &e)
		code = e.Error.Code
	}
	return resp.StatusCode, code, resp.Header.Get("Retry-After")
}

// occupyWorkers parks tasks on every worker slot through the admission path
// (so the occupiers hold admission tokens exactly like real requests), which
// makes subsequent request traffic deterministically queue or shed. Returns
// the release function.
func occupyWorkers(t *testing.T, s *Server) func() {
	t.Helper()
	n := s.pool.Workers()
	block := make(chan struct{})
	for i := 0; i < n; i++ {
		started := make(chan struct{})
		go func() {
			if err := s.pool.TryDo(context.Background(), func() { close(started); <-block }); err != nil {
				t.Errorf("occupier rejected: %v", err)
			}
		}()
		<-started
	}
	var once sync.Once
	return func() { once.Do(func() { close(block) }) }
}

// waitUntil polls cond for a bounded time.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShedding429MatchesMetrics: with the one worker occupied and the
// admission queue (depth 1) filled, further requests are shed with 429 +
// Retry-After, and thermserve_shed_total equals exactly the number of 429s
// clients observed.
func TestShedding429MatchesMetrics(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := occupyWorkers(t, srv)
	defer release()

	// Fill the queue slot with one admitted request.
	queuedDone := make(chan error, 1)
	go func() {
		_, _, err := tryPostSchedule(hs.URL, table1Request())
		queuedDone <- err
	}()
	waitUntil(t, "request to queue", func() bool { return srv.pool.Queued() == 1 })

	if h := fetchHealth(t, hs.URL); h.QueueDepth != 1 || h.QueueLimit != 1 {
		t.Errorf("healthz queue occupancy = %d/%d, want 1/1", h.QueueDepth, h.QueueLimit)
	}

	const shedTries = 3
	var observed429 int
	for i := 0; i < shedTries; i++ {
		status, code, retryAfter := postChaos(t, hs.URL, table1Request(), nil)
		if status != http.StatusTooManyRequests {
			t.Fatalf("request %d on saturated server: status %d (code %s), want 429", i, status, code)
		}
		observed429++
		if code != "saturated" {
			t.Errorf("shed error code = %q, want saturated", code)
		}
		if retryAfter != "5" {
			// The hint scales with queue occupancy; the queue is provably
			// full here (the queued request is parked until release), so the
			// helper must emit its fully-congested value.
			t.Errorf("shed Retry-After = %q, want \"5\" (full queue)", retryAfter)
		}
	}

	if got := fetchMetric(t, hs.URL, "thermserve_shed_total"); int(got) != observed429 {
		t.Errorf("thermserve_shed_total = %v, observed %d client 429s", got, observed429)
	}

	// Release the workers: the queued request must complete normally.
	release()
	if err := <-queuedDone; err != nil {
		t.Errorf("queued request after release: %v", err)
	}
}

// TestQueuedDeadline503: a request whose deadline expires while it waits for
// a worker gets 503 deadline_queued and is counted under stage="queued".
func TestQueuedDeadline503(t *testing.T) {
	srv, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	release := occupyWorkers(t, srv)
	defer release()

	req := table1Request()
	req["deadline_ms"] = 30
	status, code, _ := postChaos(t, hs.URL, req, nil)
	if status != http.StatusServiceUnavailable || code != "deadline_queued" {
		t.Fatalf("queued-deadline request: status %d code %q, want 503 deadline_queued", status, code)
	}
	if got := fetchMetric(t, hs.URL, `thermserve_deadline_exceeded_total{stage="queued"}`); got != 1 {
		t.Errorf(`deadline_exceeded_total{stage="queued"} = %v, want 1`, got)
	}
}

// TestDeadlineDuringGeneration: an already-expired deadline on an idle
// server still reaches the generator (a free worker is taken without
// consulting the context), which aborts at its first cancellation poll —
// deterministically a 503 deadline_generating.
func TestDeadlineDuringGeneration(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, code, _ := postChaos(t, hs.URL, table1Request(), map[string]string{"X-Request-Deadline": "1ns"})
	if status != http.StatusServiceUnavailable || code != "deadline_generating" {
		t.Fatalf("expired-deadline request: status %d code %q, want 503 deadline_generating", status, code)
	}
	if g := fetchMetric(t, hs.URL, `thermserve_deadline_exceeded_total{stage="generating"}`); g != 1 {
		t.Errorf(`deadline_exceeded_total{stage="generating"} = %v, want 1`, g)
	}

	// The same request without the crushing deadline succeeds — nothing about
	// the aborted attempt poisoned the system (its partial simulations stay
	// memoized).
	if _, _, err := tryPostSchedule(hs.URL, table1Request()); err != nil {
		t.Fatalf("request after an aborted one: %v", err)
	}
}

// TestBadDeadlineHeaderRejected: an unparseable X-Request-Deadline is a 400,
// not a silently ignored knob.
func TestBadDeadlineHeaderRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, code, _ := postChaos(t, hs.URL, table1Request(), map[string]string{"X-Request-Deadline": "soon"})
	if status != http.StatusBadRequest || code != "bad_deadline" {
		t.Fatalf("bad deadline header: status %d code %q, want 400 bad_deadline", status, code)
	}
}

// TestMaxSystemsLRUDropsIdle: with MaxSystems 2, a third distinct system
// LRU-drops the oldest idle one; the dropped system still answers when
// re-requested (it rebuilds).
func TestMaxSystemsLRUDropsIdle(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxSystems: 2})

	reqs := []map[string]any{
		{"workload": "alpha21364", "tl_celsius": 165, "stcl": 60},
		{"workload": "figure1", "tl_celsius": 165, "stcl": 60},
		// Same workload as the first but a different package → distinct system.
		{"workload": "alpha21364", "tl_celsius": 165, "stcl": 60,
			"package": map[string]any{"ambient_celsius": 50}},
	}
	for i, r := range reqs {
		if _, _, err := tryPostSchedule(hs.URL, r); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if h := fetchHealth(t, hs.URL); h.SystemsLive > 2 {
		t.Errorf("systems_live = %d with MaxSystems=2", h.SystemsLive)
	}
	if got := fetchMetric(t, hs.URL, "thermserve_systems_dropped_total"); got < 1 {
		t.Errorf("thermserve_systems_dropped_total = %v, want >= 1", got)
	}
	// The dropped (oldest) system rebuilds transparently.
	out, _, err := tryPostSchedule(hs.URL, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Cache.SystemWarm {
		t.Error("re-requested dropped system claims to be warm")
	}
}

// TestFaultSoakBreakerRecovery is the chaos acceptance test: an EIO storm
// with torn appends on the store's disk path trips the breaker, the service
// keeps serving byte-identical warm results while degraded, /healthz reports
// it, and once the fault clears the breaker closes, persistence resumes, and
// a clean reopen of the store finds zero corrupt bytes.
func TestFaultSoakBreakerRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := oraclestore.NewFaultFS(nil)
	srv, hs := newTestServer(t, Config{
		CacheDir:     dir,
		Workers:      4,
		StoreFS:      ffs,
		StoreRetry:   oraclestore.RetryPolicy{Attempts: 2, Base: time.Microsecond, Cap: time.Microsecond},
		StoreBreaker: oraclestore.BreakerPolicy{Failures: 1, Probe: 10 * time.Millisecond},
	})

	// Healthy baseline: cold request persists, /healthz is ok.
	baseline, baselineRaw := postSchedule(t, hs.URL, table1Request())
	if baseline.Cache.Tier2Misses == 0 {
		t.Fatal("cold baseline reports no store misses")
	}
	if h := fetchHealth(t, hs.URL); h.Status != "ok" || h.Store == nil || h.Store.Breaker != "closed" {
		t.Fatalf("healthy server reports %+v", h)
	}

	// EIO storm with torn half-writes on every append.
	ffs.Inject(oraclestore.Fault{Op: oraclestore.OpAppend, Err: syscall.EIO, TornBytes: 9})

	// New work (different STCL → new candidate sessions → new records) keeps
	// succeeding while its spills fail, and trips the breaker.
	for i, stcl := range []float64{20, 30, 40} {
		req := table1Request()
		req["stcl"] = stcl
		if _, _, err := tryPostSchedule(hs.URL, req); err != nil {
			t.Fatalf("request %d during EIO storm: %v", i, err)
		}
	}
	waitUntil(t, "breaker to open", func() bool {
		return fetchHealth(t, hs.URL).Store.Breaker == "open"
	})
	h := fetchHealth(t, hs.URL)
	if h.Status != "degraded" {
		t.Errorf("healthz status = %q with open breaker, want degraded", h.Status)
	}
	if h.Store.Unpersisted == 0 {
		t.Error("no unpersisted answers counted during the storm")
	}

	// Degraded-mode guarantee: the warm request answers byte-identically.
	during, duringRaw := postSchedule(t, hs.URL, table1Request())
	if !bytes.Equal(baselineRaw, duringRaw) {
		t.Errorf("degraded result differs from baseline:\nbase: %s\ndegraded: %s", baselineRaw, duringRaw)
	}
	if !during.Cache.SystemWarm {
		t.Error("degraded warm request did not find the system warm")
	}

	// Fault cleared: /healthz polling drives the probe; the breaker closes.
	ffs.Clear()
	waitUntil(t, "breaker to close", func() bool {
		return fetchHealth(t, hs.URL).Store.Breaker == "closed"
	})
	if h := fetchHealth(t, hs.URL); h.Status != "ok" {
		t.Errorf("healthz status = %q after recovery, want ok", h.Status)
	}
	if got := fetchMetric(t, hs.URL, "thermserve_store_breaker_opens_total"); got < 1 {
		t.Errorf("breaker_opens_total = %v, want >= 1", got)
	}

	// Persistence resumes: a new scenario after recovery appends records.
	appendedBefore := srv.store.AppendedBytes()
	req := table1Request()
	req["stcl"] = 90
	postSchedule(t, hs.URL, req)
	if srv.store.AppendedBytes() == appendedBefore {
		t.Error("nothing persisted after breaker recovery")
	}

	// A clean reopen of the store finds no torn garbage: every torn append
	// was truncated away before its retry, and failed records were simply
	// never written.
	hs.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := oraclestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stats, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files == 0 {
		t.Fatal("no record files after soak")
	}
	sc, err := st.System(soakDesc(t))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Recovered() != 0 {
		t.Errorf("Recovered() = %d bytes after soak, want 0 (torn tails healed in-line)", sc.Recovered())
	}
	if sc.Loaded() == 0 {
		t.Error("no records survived the soak")
	}
}

// soakDesc is the Table 1 workload's store identity, derived exactly as the
// server derives it.
func soakDesc(t *testing.T) oraclestore.SystemDesc {
	t.Helper()
	req := &ScheduleRequest{Workload: "alpha21364", TL: 165, STCL: 60}
	spec, err := req.resolveSpec()
	if err != nil {
		t.Fatal(err)
	}
	return oraclestore.DescForBlockModel(spec.Floorplan(), req.Package.packageConfig(), spec.Profile())
}
