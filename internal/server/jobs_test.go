package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/jobs"
	"repro/internal/oraclestore"
	"repro/internal/thermal"
)

// postJob submits an async job and returns its id.
func postJob(t *testing.T, base string, body any) string {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs status %d: %s", resp.StatusCode, data)
	}
	var out JobSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		t.Fatalf("job submit reply: %+v (%v)", out, err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+out.ID {
		t.Fatalf("Location = %q", loc)
	}
	return out.ID
}

// getJob fetches a job's status.
func getJob(t *testing.T, base, id string) JobStatusResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/jobs/%s status %d: %s", id, resp.StatusCode, data)
	}
	var out JobStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// awaitJob polls until the job leaves queued/running and returns the final
// status.
func awaitJob(t *testing.T, base, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getJob(t, base, id)
		switch st.State {
		case "done", "failed", "cancelled", "interrupted":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 60s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID    int64
	Event string
	Data  json.RawMessage
}

// sseStream incrementally parses an SSE response body.
type sseStream struct {
	resp *http.Response
	br   *bufio.Reader
}

func openSSE(t *testing.T, base, id string, lastEventID int64) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("SSE status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	return &sseStream{resp: resp, br: bufio.NewReader(resp.Body)}
}

func (s *sseStream) Close() { s.resp.Body.Close() }

// Next reads one event; io.EOF means the server closed the stream.
func (s *sseStream) Next() (sseEvent, error) {
	var ev sseEvent
	seen := false
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && seen:
			return ev, nil
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
			seen = true
		case strings.HasPrefix(line, "event: "):
			ev.Event = strings.TrimPrefix(line, "event: ")
			seen = true
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
			seen = true
		}
	}
}

// gridJobRequest is a grid-resolution problem — slow enough cold that a drain
// lands mid-generation, content-addressed so restarts find its store records.
func gridJobRequest() map[string]any {
	return map[string]any{
		"workload":   "alpha21364",
		"tl_celsius": 165,
		"stcl":       60,
		"grid_res":   48,
	}
}

// TestJobAsyncMatchesSync: a job followed over SSE to completion returns the
// same deterministic result section as the synchronous endpoint, with its
// digest, and the SSE stream replays correctly from Last-Event-ID.
func TestJobAsyncMatchesSync(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})

	sync, _ := postSchedule(t, hs.URL, table1Request())
	wantDigest := resultDigest(sync.Result)

	id := postJob(t, hs.URL, table1Request())
	stream := openSSE(t, hs.URL, id, 0)
	defer stream.Close()
	var (
		events    []sseEvent
		lastState string
	)
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
		if ev.Event == "state" {
			var sd jobs.StateEventData
			if err := json.Unmarshal(ev.Data, &sd); err != nil {
				t.Fatalf("state event %s: %v", ev.Data, err)
			}
			lastState = string(sd.State)
		}
	}
	if lastState != "done" {
		t.Fatalf("stream ended in state %q; events: %+v", lastState, events)
	}
	// Monotonic ids from 1, and at least accepted/queued/running/done plus
	// phase-1 and per-session progress.
	for i, ev := range events {
		if ev.ID != int64(i+1) {
			t.Fatalf("event %d has id %d", i, ev.ID)
		}
	}
	var progress int
	for _, ev := range events {
		if ev.Event == "progress" {
			progress++
		}
	}
	if progress < 2 {
		t.Fatalf("only %d progress events; want phase-1 + per-session", progress)
	}

	st := getJob(t, hs.URL, id)
	if st.State != "done" || st.Digest != wantDigest {
		t.Fatalf("job digest %q != sync digest %q (state %s, err %s)",
			st.Digest, wantDigest, st.State, st.Error)
	}
	var jobResp ScheduleResponse
	if err := json.Unmarshal(st.Response, &jobResp); err != nil {
		t.Fatal(err)
	}
	if got := resultDigest(jobResp.Result); got != wantDigest {
		t.Fatalf("embedded response digest %q != %q", got, wantDigest)
	}

	// Reconnect with Last-Event-ID: replay resumes exactly after the cursor
	// and still closes after the final event.
	cursor := events[2].ID
	re := openSSE(t, hs.URL, id, cursor)
	defer re.Close()
	var replayed []sseEvent
	for {
		ev, err := re.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		replayed = append(replayed, ev)
	}
	if len(replayed) != len(events)-3 {
		t.Fatalf("replayed %d events from cursor %d, want %d", len(replayed), cursor, len(events)-3)
	}
	if replayed[0].ID != cursor+1 {
		t.Fatalf("replay started at id %d, want %d", replayed[0].ID, cursor+1)
	}
}

// TestJobCancelViaDelete: DELETE interrupts a running generation through the
// context plumbing; the job journals "cancelled" and a second DELETE is 409.
func TestJobCancelViaDelete(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})

	id := postJob(t, hs.URL, gridJobRequest())
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status %d, want 202", resp.StatusCode)
	}
	st := awaitJob(t, hs.URL, id)
	if st.State != "cancelled" {
		t.Fatalf("state after DELETE = %q (%s)", st.State, st.Error)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE status %d, want 409", resp.StatusCode)
	}
}

// TestJobSubmitValidates: submissions fail fast with the synchronous
// endpoint's 400 codes — nothing invalid reaches the journal.
func TestJobSubmitValidates(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, tc := range []struct {
		body string
		code string
	}{
		{`{"workload":"alpha21364","tl_celsius":165,"stcl":60,"nope":1}`, "bad_json"},
		{`{"workload":"alpha21364","stcl":60}`, "bad_config"},
		{`{"workload":"nonesuch","tl_celsius":165,"stcl":60}`, "bad_workload"},
	} {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusBadRequest || e.Error.Code != tc.code {
			t.Errorf("body %s: status %d code %q (want 400 %s)", tc.body, resp.StatusCode, e.Error.Code, tc.code)
		}
	}
}

// TestJobResumeAfterRestart is the durability chaos test: a drain interrupts
// two in-flight jobs (deterministically — the test pins every worker slot so
// both sit in the admission queue when the drain fires), the interruptions are
// journaled, and a new server over the same cachedir+journal resumes both.
// The resumed generations replay entirely from the persisted oracle store: the
// result digest is byte-identical to the uninterrupted answer, the store gains
// zero duplicate records, and no grid factorization is paid on resume.
func TestJobResumeAfterRestart(t *testing.T) {
	dirA := t.TempDir()
	cfgA := Config{CacheDir: dirA, Workers: 2}
	srvA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	hsA := newHTTPServer(t, srvA)

	// Reference answer first: running the problem to completion on srvA pins
	// the expected digest and persists every simulation, so the post-restart
	// resumes must be answerable without repeating any of them.
	ref, _ := postSchedule(t, hsA.base, gridJobRequest())
	wantDigest := resultDigest(ref.Result)

	// Pin both worker slots so the jobs submitted next deterministically wait
	// in the admission queue — in-flight but not yet generating — until the
	// drain interrupts them there.
	release := make(chan struct{})
	blocked := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go srvA.pool.Do(context.Background(), func() {
			blocked <- struct{}{}
			<-release
		})
	}
	<-blocked
	<-blocked

	id1 := postJob(t, hsA.base, gridJobRequest())
	id2 := postJob(t, hsA.base, gridJobRequest())

	// Drain with no grace: both queued jobs are cancelled with the drain
	// cause, journal "interrupted" records, and Drain returns only after
	// their goroutines have finished and the journal is synced.
	srvA.Drain(0)

	j1, _ := srvA.jobs.Get(id1)
	j2, _ := srvA.jobs.Get(id2)
	for _, st := range []jobs.Status{j1.Snapshot(), j2.Snapshot()} {
		if st.State != jobs.StateInterrupted {
			t.Fatalf("job %s after drain = %q (%s), want interrupted", st.ID, st.State, st.Error)
		}
	}
	close(release)
	hsA.close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same cachedir + journal: New replays the journal and
	// resumes both jobs warm from the store.
	srvC, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	hsC := newHTTPServer(t, srvC)
	for _, id := range []string{id1, id2} {
		st := awaitJob(t, hsC.base, id)
		if st.State != "done" {
			t.Fatalf("resumed job %s ended %q: %s", id, st.State, st.Error)
		}
		if !st.Resumed {
			t.Errorf("job %s does not report resumed", id)
		}
		if st.Digest != wantDigest {
			t.Errorf("resumed job %s digest %q != reference %q", id, st.Digest, wantDigest)
		}
		// Zero repeated work on resume: every session answered from the warm
		// tiers, and the lazily-factorized grid solver was never needed.
		var jobResp ScheduleResponse
		if err := json.Unmarshal(st.Response, &jobResp); err != nil {
			t.Fatal(err)
		}
		if jobResp.Cache.Tier2Misses != 0 {
			t.Errorf("resumed job %s re-simulated %d sessions", id, jobResp.Cache.Tier2Misses)
		}
		if jobResp.Cache.GridFactorized {
			t.Errorf("resumed job %s paid a grid factorization", id)
		}
	}
	if c := srvC.jobs.Counts(); c.Resumed != 2 {
		t.Errorf("resumed counter = %d, want 2", c.Resumed)
	}
	hsC.close()
	if err := srvC.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero repeated simulations: the store file holds no duplicate records
	// (a re-simulated answer would have been re-appended on the Put path).
	spec, err := cliutil.LoadWorkload("alpha21364", "", "")
	if err != nil {
		t.Fatal(err)
	}
	desc := oraclestore.DescForGrid(spec.Floorplan(), thermal.DefaultPackageConfig(),
		spec.Profile(), 48, 48, thermal.GridOptions{})
	store, err := oraclestore.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := store.System(desc)
	if err != nil {
		t.Fatal(err)
	}
	if d := sc.Duplicates(); d != 0 {
		t.Errorf("store holds %d duplicate records after resume", d)
	}
	if sc.Loaded() == 0 {
		t.Error("store empty after resumed generation")
	}
	store.Close()

	// A fourth server over the same cachedir answers the problem entirely
	// warm: no grid factorization, no tier-2 misses, identical digest.
	_, hsD := newTestServer(t, cfgA)
	warm, _ := postSchedule(t, hsD.URL, gridJobRequest())
	if warm.Cache.GridFactorized {
		t.Error("fully warm request paid a grid factorization")
	}
	if warm.Cache.Tier2Misses != 0 {
		t.Errorf("fully warm request simulated %d sessions", warm.Cache.Tier2Misses)
	}
	if got := resultDigest(warm.Result); got != wantDigest {
		t.Errorf("warm digest %q != reference %q", got, wantDigest)
	}
}

// TestDrainRejectsNewWorkAndReportsHealth: after Drain the server sheds new
// schedule requests and job submissions with 503 "draining" and /healthz
// reports the drain.
func TestDrainRejectsNewWorkAndReportsHealth(t *testing.T) {
	srv, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	postSchedule(t, hs.URL, table1Request())
	// No jobs in flight: a generous timeout returns promptly.
	done := make(chan struct{})
	go func() { srv.Drain(30 * time.Second); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain with idle jobs did not return")
	}

	body, _ := json.Marshal(table1Request())
	for _, path := range []string{"/v1/schedule", "/v1/jobs"} {
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusServiceUnavailable || e.Error.Code != "draining" {
			t.Errorf("POST %s during drain: status %d code %q", path, resp.StatusCode, e.Error.Code)
		}
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.Status != "draining" {
		t.Errorf("healthz during drain: %q (%v)", health.Status, err)
	}
	if health.Jobs == nil || health.Jobs.Done < 0 {
		t.Errorf("healthz missing jobs info: %+v", health.Jobs)
	}
}

// httpServer is a hand-managed httptest-like server whose lifetime the test
// controls exactly (newTestServer's cleanup order would close the store
// before a later restart reopens it).
type httpServer struct {
	base  string
	close func()
}

func newHTTPServer(t *testing.T, srv *Server) *httpServer {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	return &httpServer{base: hs.URL, close: hs.Close}
}

// TestJobsShedRetryAfter: when the tracked-job bound is hit, the 429 carries
// the same queue-depth-scaled Retry-After hint as the synchronous endpoint —
// with the table full, the hint is the 5-second ceiling of a full queue.
func TestJobsShedRetryAfter(t *testing.T) {
	srv, hs := newTestServer(t, Config{CacheDir: t.TempDir(), Workers: 1, MaxJobs: 1})
	release := occupyWorkers(t, srv)
	defer release()

	id := postJob(t, hs.URL, table1Request())

	raw, _ := json.Marshal(table1Request())
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if decodeErr != nil || resp.StatusCode != http.StatusTooManyRequests || e.Error.Code != "jobs_saturated" {
		t.Fatalf("second submit: status %d code %q (%v)", resp.StatusCode, e.Error.Code, decodeErr)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Errorf("jobs shed Retry-After = %q, want \"5\" (job table full)", got)
	}

	release()
	if st := awaitJob(t, hs.URL, id); st.State != "done" {
		t.Fatalf("first job ended %q, want done", st.State)
	}
}

// TestJobEventsBadCursor: a malformed Last-Event-ID is a client error, not a
// silent full replay — the handler must answer 400 bad_cursor before any SSE
// headers go out.
func TestJobEventsBadCursor(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	id := postJob(t, hs.URL, table1Request())
	awaitJob(t, hs.URL, id)

	req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "bogus")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if decodeErr != nil || resp.StatusCode != http.StatusBadRequest || e.Error.Code != "bad_cursor" {
		t.Fatalf("bogus cursor: status %d code %q (%v)", resp.StatusCode, e.Error.Code, decodeErr)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("bad cursor reply Content-Type = %q, want JSON error, not an SSE stream", ct)
	}
}

// TestJobEventsNegativeCursorClamps: a negative Last-Event-ID is clamped to
// zero, yielding the same full replay as a fresh subscription.
func TestJobEventsNegativeCursorClamps(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheDir: t.TempDir()})
	id := postJob(t, hs.URL, table1Request())
	awaitJob(t, hs.URL, id)

	collect := func(lastEventID string) []sseEvent {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+id+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("SSE with cursor %q: status %d: %s", lastEventID, resp.StatusCode, data)
		}
		stream := &sseStream{resp: resp, br: bufio.NewReader(resp.Body)}
		defer stream.Close()
		var events []sseEvent
		for {
			ev, err := stream.Next()
			if err == io.EOF {
				return events
			}
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, ev)
		}
	}

	fresh := collect("")
	clamped := collect("-3")
	if len(fresh) == 0 || len(clamped) != len(fresh) {
		t.Fatalf("negative cursor replayed %d events, fresh stream %d", len(clamped), len(fresh))
	}
	if clamped[0].ID != 1 || clamped[0].ID != fresh[0].ID {
		t.Errorf("negative cursor first event id = %d, want full replay from 1", clamped[0].ID)
	}
}
