package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/thermal"
)

// TestMetricsGridSpillStats: a server configured with a peak-bytes budget
// tight enough to spill must answer grid requests with the same schedule as
// an unbudgeted server and expose the spill activity as per-system gauges on
// /metrics.
func TestMetricsGridSpillStats(t *testing.T) {
	// Derive a feasible-but-tight budget from an unbudgeted model of the same
	// system: the unspillable floor (index arrays + frontal scratch) plus a
	// quarter of the factor's values.
	base, err := thermal.NewGridModelWithOptions(floorplan.Alpha21364(),
		thermal.DefaultPackageConfig(), 16, 16, thermal.GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := base.FactorStats()
	ws := st.PeakFactorBytes - int64(st.FactorNNZ)*16
	floor := int64(st.FactorNNZ)*8 + int64(base.NumNodes()+1)*8 + ws
	budget := floor + int64(st.FactorNNZ)*2

	_, refHS := newTestServer(t, Config{})
	_, hs := newTestServer(t, Config{Grid: thermal.GridOptions{
		PeakBytesBudget: budget,
		SpillDir:        t.TempDir(),
	}})

	req := table1Request()
	req["grid_res"] = 16
	ref, _ := postSchedule(t, refHS.URL, req)
	sched, _ := postSchedule(t, hs.URL, req)
	if !sched.Cache.GridFactorized {
		t.Fatal("grid request did not factorize")
	}
	if sched.Result.Schedule != ref.Result.Schedule {
		t.Errorf("budgeted schedule differs from unbudgeted:\nref:\n%s\ngot:\n%s",
			ref.Result.Schedule, sched.Result.Schedule)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)

	key := sched.Result.SystemKey
	gauge := func(name string) int64 {
		t.Helper()
		prefix := fmt.Sprintf("%s{system=%q} ", name, key)
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				v, err := strconv.ParseInt(rest, 10, 64)
				if err != nil {
					t.Fatalf("%s = %q: %v", name, rest, err)
				}
				return v
			}
		}
		t.Fatalf("metrics missing %s for system %s", name, key)
		return 0
	}
	spilled := gauge("thermserve_grid_factor_spilled_panels")
	if spilled <= 0 {
		t.Errorf("spilled panels = %d, want > 0 under budget %d", spilled, budget)
	}
	if b := gauge("thermserve_grid_factor_spilled_bytes"); b <= 0 {
		t.Errorf("spilled bytes = %d, want > 0", b)
	}
	resident := gauge("thermserve_grid_factor_peak_resident_bytes")
	if resident <= 0 || resident > budget {
		t.Errorf("peak resident %d outside (0, budget %d]", resident, budget)
	}
	if peak := gauge("thermserve_grid_factor_peak_bytes"); resident >= peak {
		t.Errorf("peak resident %d not below in-core peak %d", resident, peak)
	}
}
