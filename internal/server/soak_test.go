package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/oraclestore"
	"repro/internal/testspec"
	"repro/internal/thermal"
)

// soakScenario is one workload of the concurrency soak: the request body the
// clients post and the locally parsed spec the post-soak store audit needs.
type soakScenario struct {
	name string
	body map[string]any
	spec *testspec.Spec
}

// randomScenario renders a seeded random floorplan into the request text
// formats, so the service parses exactly what the audit parsed.
func randomScenario(t *testing.T, cores int, seed int64) soakScenario {
	t.Helper()
	fp, err := floorplan.Random(floorplan.RandomOptions{Blocks: cores, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var spec strings.Builder
	for i := 0; i < fp.NumBlocks(); i++ {
		// Modest test powers keep every scenario schedulable at TL 165.
		fmt.Fprintf(&spec, "%s 2.0 6.0 1.0\n", fp.Block(i).Name)
	}
	name := fmt.Sprintf("random-%dc-seed%d", cores, seed)
	parsed, err := testspec.Parse(strings.NewReader(spec.String()), name, fp)
	if err != nil {
		t.Fatal(err)
	}
	return soakScenario{
		name: name,
		body: map[string]any{
			"name":       name,
			"floorplan":  floorplan.Format(fp),
			"test_spec":  spec.String(),
			"tl_celsius": 165,
			"stcl":       60,
		},
		spec: parsed,
	}
}

// TestServiceConcurrencySoak hammers /v1/schedule with 32 goroutines across
// 4 floorplans (run under -race by the standard test invocation): every
// response for a scenario must carry the identical schedule, and the
// persistent store must come out with zero duplicate appends and zero torn
// bytes.
func TestServiceConcurrencySoak(t *testing.T) {
	dir := t.TempDir()
	srv, hs := newTestServer(t, Config{CacheDir: dir, Workers: 8})

	scenarios := []soakScenario{
		{name: "alpha21364", body: table1Request(), spec: testspec.Alpha21364()},
		{name: "figure1", body: map[string]any{"workload": "figure1", "tl_celsius": 165, "stcl": 60}, spec: testspec.Figure1()},
		randomScenario(t, 12, 7),
		randomScenario(t, 20, 11),
	}

	const clients = 32
	schedules := make([][]string, len(scenarios)) // [scenario][client]
	for i := range schedules {
		schedules[i] = make([]string, clients)
	}
	clientErrs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client walks the scenarios starting at a different
			// offset, so every scenario sees cold and warm contention.
			for k := 0; k < len(scenarios); k++ {
				i := (c + k) % len(scenarios)
				out, _, err := tryPostSchedule(hs.URL, scenarios[i].body)
				if err != nil {
					clientErrs[c] = fmt.Errorf("scenario %s: %w", scenarios[i].name, err)
					return
				}
				schedules[i][c] = out.Result.Schedule
			}
		}(c)
	}
	// Poll the read-only endpoints while the clients hammer /v1/schedule —
	// they iterate the system map while entries are still building, which is
	// exactly where an unsynchronized env read would race.
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	var pollErr error
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			default:
			}
			for _, path := range []string{"/v1/systems", "/metrics", "/healthz"} {
				resp, err := http.Get(hs.URL + path)
				if err != nil {
					pollErr = err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(pollStop)
	<-pollDone
	if pollErr != nil {
		t.Fatalf("read-only poller failed: %v", pollErr)
	}
	for c, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	for i, sc := range scenarios {
		for c := 1; c < clients; c++ {
			if schedules[i][c] != schedules[i][0] {
				t.Fatalf("scenario %s: client %d got a different schedule:\n%s\nvs\n%s",
					sc.name, c, schedules[i][c], schedules[i][0])
			}
		}
		if schedules[i][0] == "" {
			t.Fatalf("scenario %s: empty schedule", sc.name)
		}
	}

	// Close the server's store, then audit the files with a fresh store: no
	// duplicate appends, no torn bytes, every record loads.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	audit, err := oraclestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	cfg := thermal.DefaultPackageConfig()
	for _, sc := range scenarios {
		desc := oraclestore.DescForBlockModel(sc.spec.Floorplan(), cfg, sc.spec.Profile())
		cache, err := audit.System(desc)
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.name, err)
		}
		if cache.Loaded() == 0 {
			t.Errorf("scenario %s: store file holds no records", sc.name)
		}
		if d := cache.Duplicates(); d != 0 {
			t.Errorf("scenario %s: %d duplicate store appends", sc.name, d)
		}
		if r := cache.Recovered(); r != 0 {
			t.Errorf("scenario %s: %d torn bytes recovered", sc.name, r)
		}
	}
	st, err := audit.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != len(scenarios) {
		t.Errorf("store holds %d files, want %d (one per scenario)", st.Files, len(scenarios))
	}
}
