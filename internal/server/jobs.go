package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
)

// Cancellation causes, distinguished via context.Cause so the runner can
// classify how a run ended: a drain journals "interrupted" (resumable on
// restart), a client DELETE journals "cancelled" (final).
var (
	errDraining     = errors.New("server draining")
	errJobCancelled = errors.New("job cancelled by client")
)

// defaultMaxJobs bounds tracked non-terminal jobs when Config.MaxJobs is 0.
const defaultMaxJobs = 1024

// decodeScheduleRequest decodes a request body with the same strictness the
// synchronous endpoint applies.
func decodeScheduleRequest(body []byte) (*ScheduleRequest, error) {
	var req ScheduleRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// jobDeadline resolves an async job's per-run deadline. Only the body's
// deadline_ms participates — the X-Request-Deadline header scopes the HTTP
// exchange, and an async job outlives its submission request. The deadline
// restarts on resume: it bounds one generation attempt, not wall time across
// process restarts.
func (s *Server) jobDeadline(req *ScheduleRequest) time.Duration {
	if req.DeadlineMS != 0 {
		return time.Duration(req.DeadlineMS) * time.Millisecond
	}
	return s.cfg.DefaultDeadline
}

// handleJobSubmit serves POST /v1/jobs: validate fully (same 400s as the
// synchronous endpoint), journal, 202 with the job id, and run in the
// background.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", fmt.Sprintf("reading request body: %v", err))
		return
	}
	req, err := decodeScheduleRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("decoding request body: %v", err))
		return
	}
	if _, code, err := s.resolveProblem(req); err != nil {
		writeError(w, http.StatusBadRequest, code, err.Error())
		return
	}
	maxJobs := s.cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	if active := int(s.jobs.Counts().Active); active >= maxJobs {
		w.Header().Set("Retry-After", retryAfterHint(active, maxJobs))
		writeError(w, http.StatusTooManyRequests, "jobs_saturated",
			fmt.Sprintf("%d jobs already tracked; retry later", maxJobs))
		return
	}

	// Admission is ordered against Drain under drainMu: either this job's
	// goroutine is registered before Drain starts waiting, or the submit
	// observes draining and sheds.
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining",
			"server is draining; not admitting new jobs")
		return
	}
	j := s.jobs.Submit(json.RawMessage(body))
	s.jobs.SetQueued(j)
	s.jobsWG.Add(1)
	s.drainMu.Unlock()
	go s.runJob(j)

	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{ID: j.ID(), State: string(jobs.StateQueued)})
}

// jobFromPath resolves the {id} segment of /v1/jobs/{id}[/events].
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id = strings.TrimSuffix(id, "/events")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", fmt.Sprintf("no job %q", id))
		return nil, false
	}
	return j, true
}

// jobStatusResponse assembles the GET /v1/jobs/{id} body.
func jobStatusResponse(st jobs.Status) JobStatusResponse {
	resp := JobStatusResponse{
		ID:          st.ID,
		State:       string(st.State),
		Resumed:     st.Resumed,
		Created:     st.Created.Format(time.RFC3339Nano),
		Updated:     st.Updated.Format(time.RFC3339Nano),
		Error:       st.Error,
		Digest:      st.Digest,
		LastEventID: st.LastEventID,
	}
	if st.State == jobs.StateDone {
		resp.Response = st.Result
	}
	return resp
}

// handleJobGet serves GET /v1/jobs/{id}: current state, and on done the full
// schedule response the synchronous endpoint would have returned.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobStatusResponse(j.Snapshot()))
}

// handleJobDelete serves DELETE /v1/jobs/{id}: cancel a non-terminal job via
// the generator's interrupt plumbing. 202 (cancellation is asynchronous — the
// run must observe its context), 409 once the job is already final.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if !j.Cancel(errJobCancelled) {
		writeError(w, http.StatusConflict, "job_finished",
			fmt.Sprintf("job %s already %s", j.ID(), j.Snapshot().State))
		return
	}
	writeJSON(w, http.StatusAccepted, jobStatusResponse(j.Snapshot()))
}

// handleJobEvents serves GET /v1/jobs/{id}/events as Server-Sent Events:
// state transitions and generation progress, each with a monotonic event id.
// A reconnecting client sends Last-Event-ID and replays everything it missed
// (within the per-job ring bound). The stream closes itself after the final
// event of a terminal or interrupted job.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming_unsupported",
			"response writer cannot stream")
		return
	}
	var after int64
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil {
			// A malformed cursor silently replaying from 0 would hand a
			// confused client every event again with no indication its header
			// was ignored; refuse before committing to the SSE content type.
			writeError(w, http.StatusBadRequest, "bad_cursor",
				fmt.Sprintf("Last-Event-ID %q: want a decimal event id", h))
			return
		}
		if v < 0 {
			// Negative ids never exist; clamp to a full replay, which is what
			// a client holding a nonsense-but-numeric cursor needs.
			v = 0
		}
		after = v
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	for {
		evs, changed := s.jobs.EventsSince(j, after)
		for _, ev := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
			after = ev.ID
			if ev.Final() {
				fl.Flush()
				return
			}
		}
		fl.Flush()
		select {
		case <-changed:
		case <-ctx.Done():
			return
		}
	}
}

// resultDigest fingerprints the deterministic result section; byte-identical
// results across restarts/resumes hash identically (asserted by the chaos
// tests).
func resultDigest(result ScheduleResult) string {
	raw, _ := json.Marshal(result)
	return fmt.Sprintf("%x", sha256.Sum256(raw))
}

// runJob executes one queued job end to end on its own goroutine: resolve the
// journaled request, acquire (or build) the warm system, generate with
// progress streaming, and journal the outcome. Drain-interrupted runs journal
// "interrupted" so the next process resumes them.
func (s *Server) runJob(j *jobs.Job) {
	defer s.jobsWG.Done()
	start := time.Now()

	req, err := decodeScheduleRequest(j.Snapshot().Request)
	if err != nil {
		// Unreachable for jobs submitted by this binary (validated on POST);
		// reachable for a journal written by an older schema.
		s.jobs.SetFailed(j, fmt.Sprintf("journaled request no longer decodes: %v", err))
		return
	}
	p, _, err := s.resolveProblem(req)
	if err != nil {
		s.jobs.SetFailed(j, err.Error())
		return
	}

	ctx, cancelCause := context.WithCancelCause(context.Background())
	defer cancelCause(nil)
	if d := s.jobDeadline(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// From here DELETE and Drain reach this run; if either already happened,
	// SetCancel fires immediately and the generation exits at its first
	// interrupt check.
	j.SetCancel(cancelCause)

	entry, env, warm, err := s.acquireSystem(p)
	if err != nil {
		s.jobs.SetFailed(j, fmt.Sprintf("building system: %v", err))
		return
	}
	defer s.release(entry)

	t0 := snapshotTiers(env)
	// Progress events ride the generator's callback: phase/coverage from the
	// generator, tier-hit deltas read from the live caches. Runs on the
	// generation goroutine, so it must stay cheap — two atomic reads and one
	// small marshal per committed session.
	genCfg := p.genCfg
	genCfg.Progress = func(pi core.ProgressInfo) {
		t1 := snapshotTiers(env)
		s.jobs.Progress(j, JobProgressEvent{
			Phase:          pi.Phase,
			Sessions:       pi.Sessions,
			CoresScheduled: pi.CoresScheduled,
			CoresTotal:     pi.CoresTotal,
			Attempts:       pi.Attempts,
			Violations:     pi.Violations,
			Tier1Hits:      t1.h - t0.h,
			Tier1Misses:    t1.m - t0.m,
			Tier2Hits:      t1.sh - t0.sh,
			Tier2Misses:    t1.sm - t0.sm,
		})
	}

	var (
		res      *core.Result
		genErr   error
		queueDur time.Duration
		genDur   time.Duration
	)
	queued := time.Now()
	// Jobs were admitted at POST time (MaxJobs); the pool's trusted path just
	// bounds their simulation parallelism alongside synchronous traffic.
	poolErr := s.pool.Do(ctx, func() {
		queueDur = time.Since(queued)
		s.jobs.SetRunning(j)
		g0 := time.Now()
		res, genErr = env.GenerateContext(ctx, genCfg)
		genDur = time.Since(g0)
	})
	s.maybeEvict()
	s.pushRemote()

	if poolErr == nil && genErr == nil {
		result := buildScheduleResult(req, p, res)
		digest := resultDigest(result)
		resp := ScheduleResponse{
			Result: result,
			Cache:  cacheInfo(env, warm, t0),
			Timing: TimingInfo{
				QueueMS:    float64(queueDur) / float64(time.Millisecond),
				GenerateMS: float64(genDur) / float64(time.Millisecond),
				TotalMS:    float64(time.Since(start)) / float64(time.Millisecond),
			},
		}
		full, err := json.Marshal(resp)
		if err != nil {
			s.jobs.SetFailed(j, fmt.Sprintf("encoding result: %v", err))
			return
		}
		s.jobs.SetDone(j, full, digest)
		return
	}

	runErr := genErr
	if runErr == nil {
		runErr = poolErr
	}
	switch cause := context.Cause(ctx); {
	case errors.Is(cause, errDraining):
		s.jobs.SetInterrupted(j, "interrupted by drain; will resume on restart")
	case errors.Is(cause, errJobCancelled):
		s.jobs.SetCancelled(j, "cancelled by client")
	case errors.Is(cause, context.DeadlineExceeded) || errors.Is(runErr, context.DeadlineExceeded):
		s.jobs.SetFailed(j, fmt.Sprintf("deadline expired: %v", runErr))
	default:
		s.jobs.SetFailed(j, runErr.Error())
	}
}

// Drain gracefully winds the job subsystem down: stop admitting (schedule
// requests and job submissions shed with 503 "draining"), give running jobs
// up to timeout to finish, then interrupt the rest — each journals an
// "interrupted" record a restarted server resumes from — and sync the
// journal. A timeout <= 0 interrupts immediately. Safe to call once; later
// calls return after the first completes.
func (s *Server) Drain(timeout time.Duration) {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(finished)
	}()
	if timeout > 0 {
		select {
		case <-finished:
			_ = s.jobs.Sync()
			return
		case <-time.After(timeout):
		}
	}
	s.jobs.CancelActive(errDraining)
	// The cancelled runners still need to observe their contexts and journal
	// their interrupted records.
	<-finished
	_ = s.jobs.Sync()
}
