package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/oraclestore"
)

func openTestManager(t *testing.T, path string, cfg Config) *Manager {
	t.Helper()
	cfg.Path = path
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func TestJobLifecycleJournaledAndReplayed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := openTestManager(t, path, Config{})

	req := json.RawMessage(`{"system":"alpha21364","tl":165}`)
	j := m.Submit(req)
	if j.ID() == "" {
		t.Fatal("empty job id")
	}
	m.SetQueued(j)
	m.SetRunning(j)
	m.Progress(j, map[string]int{"sessions": 3})
	result := json.RawMessage(`{"result":{"sessions":9}}`)
	m.SetDone(j, result, "abc123")

	select {
	case <-j.Done():
	default:
		t.Fatal("Done channel not closed after SetDone")
	}
	st := j.Snapshot()
	if st.State != StateDone || st.Digest != "abc123" || string(st.Result) != string(result) {
		t.Fatalf("snapshot: %+v", st)
	}
	c := m.Counts()
	if c.Queued != 1 || c.Running != 1 || c.Done != 1 || c.Active != 0 {
		t.Fatalf("counts: %+v", c)
	}
	// Events: accepted, queued, running, progress, done.
	evs, _ := m.EventsSince(j, 0)
	if len(evs) != 5 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	if evs[3].Type != "progress" || evs[4].Type != "state" || !evs[4].Final() {
		t.Fatalf("event tail: %+v", evs[3:])
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: the terminal job comes back with its result; no resumables.
	m2 := openTestManager(t, path, Config{})
	defer m2.Close()
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatal("job not replayed")
	}
	st2 := j2.Snapshot()
	if st2.State != StateDone || st2.Digest != "abc123" ||
		string(st2.Result) != string(result) || string(st2.Request) != string(req) {
		t.Fatalf("replayed snapshot: %+v", st2)
	}
	if r := m2.Resumable(); len(r) != 0 {
		t.Fatalf("terminal job reported resumable: %v", r)
	}
	if c := m2.Counts(); c.Done != 0 || c.Active != 0 {
		t.Fatalf("replay should not count transitions: %+v", c)
	}
}

func TestReplayReportsInterruptedJobsResumable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := openTestManager(t, path, Config{})
	a := m.Submit(json.RawMessage(`{"n":1}`))
	m.SetQueued(a)
	m.SetRunning(a)
	m.SetInterrupted(a, "draining")
	b := m.Submit(json.RawMessage(`{"n":2}`))
	m.SetQueued(b)
	done := m.Submit(json.RawMessage(`{"n":3}`))
	m.SetQueued(done)
	m.SetRunning(done)
	m.SetDone(done, json.RawMessage(`{"ok":true}`), "d")
	m.Close()

	m2 := openTestManager(t, path, Config{})
	defer m2.Close()
	res := m2.Resumable()
	if len(res) != 2 || res[0].ID() != a.ID() || res[1].ID() != b.ID() {
		ids := make([]string, len(res))
		for i, j := range res {
			ids[i] = j.ID()
		}
		t.Fatalf("resumable = %v, want [%s %s]", ids, a.ID(), b.ID())
	}
	// Replayed jobs carry one synthetic state event so a subscriber sees
	// where they stand immediately.
	evs, _ := m2.EventsSince(res[0], 0)
	if len(evs) != 1 || evs[0].Type != "state" {
		t.Fatalf("replayed events: %+v", evs)
	}
	var sd StateEventData
	if err := json.Unmarshal(evs[0].Data, &sd); err != nil || sd.State != StateInterrupted {
		t.Fatalf("replayed state event: %s", evs[0].Data)
	}

	// Requeue re-arms the interrupted job: fresh done channel, resumed flag,
	// counted as a resume.
	m2.Requeue(res[0])
	st := res[0].Snapshot()
	if st.State != StateQueued || !st.Resumed {
		t.Fatalf("after Requeue: %+v", st)
	}
	select {
	case <-res[0].Done():
		t.Fatal("Done channel should be re-armed after Requeue")
	default:
	}
	if c := m2.Counts(); c.Resumed != 1 || c.Active != 2 {
		t.Fatalf("counts after requeue: %+v", c)
	}
	m2.SetRunning(res[0])
	m2.SetDone(res[0], json.RawMessage(`{"ok":1}`), "x")
	select {
	case <-res[0].Done():
	default:
		t.Fatal("Done not closed after resumed job finished")
	}
}

func TestJournalTornTailHealsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := openTestManager(t, path, Config{})
	j := m.Submit(json.RawMessage(`{"n":1}`))
	m.SetQueued(j)
	m.Close()

	// Crash mid-append: torn bytes after the last full record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 1, 0, 0, '{', '"'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := openTestManager(t, path, Config{})
	defer m2.Close()
	if st := m2.JournalStats(); st.Recovered != 6 || st.Replayed != 2 {
		t.Fatalf("journal stats after heal: %+v", st)
	}
	res := m2.Resumable()
	if len(res) != 1 || res[0].ID() != j.ID() {
		t.Fatalf("resumable after heal: %v", res)
	}
	if st := res[0].Snapshot(); st.State != StateQueued {
		t.Fatalf("healed job state: %+v", st)
	}
}

func TestEventsSinceCursorAndNotification(t *testing.T) {
	m := openTestManager(t, filepath.Join(t.TempDir(), "jobs.wal"), Config{})
	defer m.Close()
	j := m.Submit(json.RawMessage(`{}`))
	m.SetQueued(j)

	evs, changed := m.EventsSince(j, 0)
	if len(evs) != 2 || evs[0].ID != 1 || evs[1].ID != 2 {
		t.Fatalf("events: %+v", evs)
	}
	// Cursor skips already-seen events.
	evs, changed = m.EventsSince(j, 2)
	if len(evs) != 0 {
		t.Fatalf("cursor miss: %+v", evs)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-changed:
		case <-time.After(5 * time.Second):
			t.Error("changed channel never fired")
		}
	}()
	m.SetRunning(j)
	wg.Wait()
	evs, _ = m.EventsSince(j, 2)
	if len(evs) != 1 || evs[0].ID != 3 {
		t.Fatalf("post-notify events: %+v", evs)
	}
	m.SetDone(j, json.RawMessage(`{}`), "d")
}

func TestEventRingBounded(t *testing.T) {
	m := openTestManager(t, filepath.Join(t.TempDir(), "jobs.wal"), Config{MaxEvents: 4})
	defer m.Close()
	j := m.Submit(json.RawMessage(`{}`))
	for i := 0; i < 10; i++ {
		m.Progress(j, map[string]int{"i": i})
	}
	evs, _ := m.EventsSince(j, 0)
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Newest events retained, ids still monotonic.
	if evs[0].ID != 8 || evs[3].ID != 11 {
		t.Fatalf("ring ids: %d..%d", evs[0].ID, evs[3].ID)
	}
	// A cursor behind the ring's head gets everything retained.
	evs, _ = m.EventsSince(j, 2)
	if len(evs) != 4 {
		t.Fatalf("behind-head cursor got %d events", len(evs))
	}
}

func TestCancelActiveAndLateRegistration(t *testing.T) {
	m := openTestManager(t, filepath.Join(t.TempDir(), "jobs.wal"), Config{})
	defer m.Close()
	cause := errors.New("draining")

	j := m.Submit(json.RawMessage(`{}`))
	m.SetQueued(j)
	var got error
	j.SetCancel(func(err error) { got = err })
	if n := m.CancelActive(cause); n != 1 {
		t.Fatalf("CancelActive hit %d jobs", n)
	}
	if got != cause {
		t.Fatalf("cancel cause = %v", got)
	}
	if draining, c := m.Draining(); !draining || c != cause {
		t.Fatalf("Draining = %v, %v", draining, c)
	}
	// A hook registered after the drain fires immediately.
	late := m.Submit(json.RawMessage(`{}`))
	var lateGot error
	late.SetCancel(func(err error) { lateGot = err })
	if lateGot != cause {
		t.Fatalf("late registration cause = %v", lateGot)
	}
}

func TestFinalTransitionWinsRace(t *testing.T) {
	m := openTestManager(t, filepath.Join(t.TempDir(), "jobs.wal"), Config{})
	defer m.Close()
	j := m.Submit(json.RawMessage(`{}`))
	m.SetRunning(j)
	m.SetCancelled(j, "client cancel")
	// A drain landing just after the cancel must not resurrect the job.
	m.SetInterrupted(j, "draining")
	if st := j.Snapshot(); st.State != StateCancelled {
		t.Fatalf("state after racing finals: %+v", st)
	}
	if c := m.Counts(); c.Cancelled != 1 || c.Active != 0 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestJournalFaultDegradesMemoryOnly(t *testing.T) {
	ffs := oraclestore.NewFaultFS(nil)
	path := filepath.Join(t.TempDir(), "jobs.wal")
	var logged []string
	m := openTestManager(t, path, Config{
		FS:      ffs,
		Retry:   oraclestore.RetryPolicy{Attempts: 1},
		Breaker: oraclestore.BreakerPolicy{Failures: 1},
		Logf:    func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	defer m.Close()
	j := m.Submit(json.RawMessage(`{"n":1}`))
	ffs.Inject(Fault{Op: oraclestore.OpAppend, Err: syscall.ENOSPC})
	m.SetQueued(j) // append fails, breaker trips, transition still lands
	m.SetRunning(j)
	if st := j.Snapshot(); st.State != StateRunning {
		t.Fatalf("transitions must survive journal faults: %+v", st)
	}
	st := m.JournalStats()
	if st.Failures == 0 || st.Unpersisted == 0 {
		t.Fatalf("journal stats: %+v", st)
	}
	ffs.Clear()
}

// Fault is re-exported for test brevity.
type Fault = oraclestore.Fault

func TestOpenUnreadableJournalDegradesMemoryOnly(t *testing.T) {
	ffs := oraclestore.NewFaultFS(nil)
	ffs.Inject(Fault{Op: oraclestore.OpOpen, Err: syscall.EACCES})
	ffs.Inject(Fault{Op: oraclestore.OpCreate, Err: syscall.EACCES})
	var logged int
	m := openTestManager(t, filepath.Join(t.TempDir(), "jobs.wal"), Config{
		FS:    ffs,
		Retry: oraclestore.RetryPolicy{Attempts: 1},
		Logf:  func(string, ...any) { logged++ },
	})
	defer m.Close()
	if logged == 0 {
		t.Fatal("degradation not logged")
	}
	// Fully functional, just not durable.
	j := m.Submit(json.RawMessage(`{}`))
	m.SetQueued(j)
	m.SetDone(j, json.RawMessage(`{}`), "d")
	if st := m.JournalStats(); !st.MemOnly {
		t.Fatalf("journal stats: %+v", st)
	}
}
