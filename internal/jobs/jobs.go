// Package jobs is the durable async job subsystem behind the schedule
// service's POST /v1/jobs API. A Manager tracks every job's lifecycle
// (accepted → queued → running → done|failed|cancelled, plus interrupted for
// jobs a drain or crash stopped mid-run), journals each state transition to a
// crash-safe oraclestore.RecordLog, and publishes per-job event streams the
// HTTP layer serves as SSE.
//
// Durability story. Every transition is one CRC-framed JSON record appended
// through the oraclestore record discipline: torn tails heal on open,
// appends retry with backoff, and a failing journal disk degrades the
// manager to memory-only (availability over durability — the store tier
// already preserves the expensive simulation work). A restarted manager
// replays the journal: terminal jobs come back queryable with their full
// result, and jobs that were accepted/queued/running when the process died
// surface through Resumable so the server can re-run them — warm, because
// the oracle store still holds everything they simulated.
//
// Events. Each job carries a bounded ring of monotonically numbered events
// ("state" transitions and un-journaled "progress" snapshots). EventsSince
// supports the SSE Last-Event-ID reconnect contract: a client that lost its
// stream re-reads everything after the last id it saw, then blocks on the
// job's change channel.
package jobs

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oraclestore"
)

// State is a job lifecycle state.
type State string

const (
	// StateAccepted: the request was validated and journaled.
	StateAccepted State = "accepted"
	// StateQueued: the job is waiting for its goroutine/worker slot.
	StateQueued State = "queued"
	// StateRunning: generation is in progress.
	StateRunning State = "running"
	// StateDone: the job finished; its result and digest are recorded.
	StateDone State = "done"
	// StateFailed: generation failed (bad config discovered late, deadline,
	// max-attempts); the error message is recorded.
	StateFailed State = "failed"
	// StateCancelled: a client cancelled the job via DELETE.
	StateCancelled State = "cancelled"
	// StateInterrupted: a drain (or crash) stopped the job mid-run. Not
	// terminal across processes: a restarted manager reports interrupted jobs
	// as Resumable and the server re-runs them warm from the store.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state ends a job for good: no resume, no
// further transitions. Interrupted is deliberately non-terminal — it is the
// state a restart picks jobs back up from.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// final reports whether the state ends the job's event stream in *this*
// process: terminal states plus interrupted (the process is draining; the
// resumed run in the next process starts a fresh stream).
func (s State) final() bool { return s.Terminal() || s == StateInterrupted }

// Event is one entry of a job's event stream. IDs are per-job, monotonic
// from 1, and restart from 1 in a resumed process (SSE reconnect across a
// restart replays from scratch — the journal, not the ring, is the durable
// record).
type Event struct {
	ID   int64           `json:"id"`
	Type string          `json:"type"` // "state" | "progress"
	Data json.RawMessage `json:"data"`

	// final marks the last event of the stream in this process.
	final bool
}

// Final reports whether this event ends the stream (terminal or interrupted
// state event).
func (e Event) Final() bool { return e.final }

// StateEventData is the payload of a "state" event.
type StateEventData struct {
	State   State  `json:"state"`
	Error   string `json:"error,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
}

// Job is one tracked job. All mutable fields are guarded by the owning
// Manager's lock; read them through Snapshot or the accessors.
type Job struct {
	m  *Manager
	id string

	// Everything below is guarded by m.mu.
	state   State
	payload json.RawMessage
	result  json.RawMessage
	digest  string
	errMsg  string
	resumed bool
	created time.Time
	updated time.Time
	// pendingCancel is a cancellation requested before the runner registered
	// its hook; SetCancel delivers it.
	pendingCancel error

	events    []Event
	nextEvent int64
	dropped   int64 // events trimmed from the ring's head
	changed   chan struct{}

	cancel func(error)
	done   chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a final state in this
// process (terminal or interrupted).
func (j *Job) Done() <-chan struct{} { return j.done }

// Status is a consistent read of one job.
type Status struct {
	ID      string
	State   State
	Resumed bool
	Created time.Time
	Updated time.Time
	Request json.RawMessage
	Result  json.RawMessage
	Digest  string
	Error   string
	// LastEventID is the id of the newest event published so far.
	LastEventID int64
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.m.mu.Lock()
	defer j.m.mu.Unlock()
	return Status{
		ID:          j.id,
		State:       j.state,
		Resumed:     j.resumed,
		Created:     j.created,
		Updated:     j.updated,
		Request:     j.payload,
		Result:      j.result,
		Digest:      j.digest,
		Error:       j.errMsg,
		LastEventID: j.nextEvent,
	}
}

// SetCancel registers the run's cancellation hook (a context.CancelCauseFunc)
// so DELETE and drain can interrupt the generation. If a drain or a
// cancellation was already requested the hook is invoked immediately with
// that cause (drain wins).
func (j *Job) SetCancel(cancel func(error)) {
	j.m.mu.Lock()
	j.cancel = cancel
	cause := j.m.drainCause
	if cause == nil {
		cause = j.pendingCancel
	}
	j.m.mu.Unlock()
	if cause != nil {
		cancel(cause)
	}
}

// Cancel requests the job's cancellation with cause, invoking the registered
// hook — or, when the runner has not registered one yet, recording the cause
// so SetCancel fires it on registration (no window where a DELETE is lost).
// It reports false only when the job is already final.
func (j *Job) Cancel(cause error) bool {
	j.m.mu.Lock()
	if j.state.final() {
		j.m.mu.Unlock()
		return false
	}
	cancel := j.cancel
	if cancel == nil {
		j.pendingCancel = cause
		j.m.mu.Unlock()
		return true
	}
	j.m.mu.Unlock()
	cancel(cause)
	return true
}

// Counters are the manager's lifetime transition counts (this process only —
// replayed history does not count, resumes do).
type Counters struct {
	Queued, Running, Done, Failed, Cancelled, Interrupted, Resumed int64
	// Active is the current number of non-final jobs.
	Active int64
}

// Config parameterises a Manager.
type Config struct {
	// Path is the journal file; empty runs memory-only (no durability, jobs
	// die with the process).
	Path string
	// FS / Retry / Breaker tune the journal's fault plumbing, mirroring the
	// oracle store's knobs; zero values select production defaults.
	FS      oraclestore.FS
	Retry   oraclestore.RetryPolicy
	Breaker oraclestore.BreakerPolicy
	// MaxEvents bounds each job's in-RAM event ring; 0 → 1024. A reconnect
	// whose Last-Event-ID predates the ring's head replays from the oldest
	// retained event.
	MaxEvents int
	// Logf receives journal degradation notices; nil disables.
	Logf func(format string, args ...any)
}

// Manager owns the job table, the journal and the event plumbing.
type Manager struct {
	cfg Config
	log *oraclestore.RecordLog

	mu         sync.Mutex
	jobs       map[string]*Job
	order      []string // insertion order, for deterministic resume
	drainCause error

	active                                                         atomic.Int64
	queued, running, done, failed, cancelled, interrupted, resumed atomic.Int64
}

// journalTag names the journal schema; bump the string to invalidate old
// journals on an incompatible record change.
var journalTag = sha256.Sum256([]byte("thermserve-jobs-journal-v1"))

// Open builds a Manager, replaying cfg.Path when it exists. A journal whose
// disk cannot be opened degrades to memory-only (logged) rather than failing:
// job durability is best-effort by design, serving is not.
func Open(cfg Config) (*Manager, error) {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 1024
	}
	m := &Manager{cfg: cfg, jobs: make(map[string]*Job)}
	if cfg.Path == "" {
		m.log = oraclestore.NewMemRecordLog()
		return m, nil
	}
	var replayErrs int
	log, err := oraclestore.OpenRecordLog(cfg.Path, journalTag, oraclestore.RecordLogOptions{
		FS:      cfg.FS,
		Retry:   cfg.Retry,
		Breaker: cfg.Breaker,
	}, func(payload []byte) error {
		if err := m.replay(payload); err != nil {
			// A frame that passed its CRC but does not decode is a schema
			// drift bug, not corruption; skip it rather than refuse every
			// job that came after it.
			replayErrs++
		}
		return nil
	})
	if err != nil {
		if cfg.Logf != nil {
			cfg.Logf("jobs: journal %s unavailable, running memory-only: %v", cfg.Path, err)
		}
		m.log = oraclestore.NewMemRecordLog()
		return m, nil
	}
	if replayErrs > 0 && cfg.Logf != nil {
		cfg.Logf("jobs: skipped %d undecodable journal records", replayErrs)
	}
	m.log = log
	// Replayed non-final jobs are owed a resume; give every replayed job one
	// synthetic state event so a status poll or SSE subscription sees where
	// it stands even before the server re-queues it.
	m.mu.Lock()
	for _, id := range m.order {
		j := m.jobs[id]
		m.publishStateLocked(j)
	}
	m.mu.Unlock()
	return m, nil
}

// journalRecord is one journal frame: a state transition with whichever
// fields that transition carries.
type journalRecord struct {
	ID      string          `json:"id"`
	State   State           `json:"state"`
	Time    time.Time       `json:"time"`
	Request json.RawMessage `json:"request,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Digest  string          `json:"digest,omitempty"`
	Error   string          `json:"error,omitempty"`
	Resumed bool            `json:"resumed,omitempty"`
}

// replay applies one journal record during Open (no events, no counters —
// history is state, not traffic).
func (m *Manager) replay(payload []byte) error {
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return err
	}
	if rec.ID == "" || rec.State == "" {
		return fmt.Errorf("journal record missing id or state")
	}
	j, ok := m.jobs[rec.ID]
	if !ok {
		if rec.State != StateAccepted {
			return fmt.Errorf("journal transition %s for unknown job %s", rec.State, rec.ID)
		}
		j = &Job{
			m:       m,
			id:      rec.ID,
			state:   StateAccepted,
			payload: rec.Request,
			created: rec.Time,
			updated: rec.Time,
			changed: make(chan struct{}),
			done:    make(chan struct{}),
		}
		m.jobs[rec.ID] = j
		m.order = append(m.order, rec.ID)
		m.active.Add(1)
		return nil
	}
	j.state = rec.State
	j.updated = rec.Time
	if rec.Resumed {
		j.resumed = true
	}
	if rec.State == StateDone {
		j.result = rec.Result
		j.digest = rec.Digest
	}
	if rec.Error != "" {
		j.errMsg = rec.Error
	}
	if rec.State.final() {
		select {
		case <-j.done:
		default:
			close(j.done)
		}
		if rec.State.Terminal() {
			m.active.Add(-1)
		}
	}
	return nil
}

// Resumable returns, in submission order, every job the journal left in a
// non-terminal state — the jobs a restarted server must re-queue. Jobs
// interrupted by a drain count; jobs that reached done/failed/cancelled do
// not.
func (m *Manager) Resumable() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Job
	for _, id := range m.order {
		if j := m.jobs[id]; !j.state.Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// newID mints a 16-hex-char job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit registers a new job in state accepted with the given request
// payload, journaling it. The caller transitions it onward (SetQueued, ...).
func (m *Manager) Submit(payload json.RawMessage) *Job {
	now := time.Now().UTC()
	j := &Job{
		m:       m,
		id:      newID(),
		state:   StateAccepted,
		payload: payload,
		created: now,
		updated: now,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	m.mu.Lock()
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.active.Add(1)
	m.journalLocked(journalRecord{ID: j.id, State: StateAccepted, Time: now, Request: payload})
	m.publishStateLocked(j)
	m.mu.Unlock()
	return j
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every tracked job id in submission order.
func (m *Manager) Jobs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// transition journals and publishes one state change. mutate runs under the
// lock after the state is set, to attach transition-specific fields.
func (m *Manager) transition(j *Job, state State, rec journalRecord, mutate func()) {
	now := time.Now().UTC()
	rec.ID = j.id
	rec.State = state
	rec.Time = now
	m.mu.Lock()
	// A final job normally rejects further transitions: the first final
	// transition wins a race (e.g. DELETE landing as the drain interrupts)
	// rather than resurrecting the job. The one sanctioned revival is a
	// resumed requeue of an interrupted job on restart.
	if j.state.final() && !(rec.Resumed && j.state == StateInterrupted && state == StateQueued) {
		m.mu.Unlock()
		return
	}
	j.state = state
	j.updated = now
	if mutate != nil {
		mutate()
	}
	m.journalLocked(rec)
	m.publishStateLocked(j)
	if state.final() {
		close(j.done)
		if state.Terminal() {
			m.active.Add(-1)
		}
	}
	m.mu.Unlock()
}

// SetQueued marks the job waiting for its runner.
func (m *Manager) SetQueued(j *Job) {
	m.queued.Add(1)
	m.transition(j, StateQueued, journalRecord{}, nil)
}

// Requeue marks a replayed job queued again with the resumed flag, counting
// it as a resume. The server calls this once per Resumable job on restart.
func (m *Manager) Requeue(j *Job) {
	m.queued.Add(1)
	m.resumed.Add(1)
	m.transition(j, StateQueued, journalRecord{Resumed: true}, func() {
		j.resumed = true
		// The job may have been left final-in-process (interrupted) by the
		// previous run's drain; its replay closed done. Re-arm it for the
		// fresh run.
		select {
		case <-j.done:
			j.done = make(chan struct{})
			if j.state == StateInterrupted { // re-activated
				m.active.Add(1)
			}
		default:
		}
	})
}

// SetRunning marks the job generating.
func (m *Manager) SetRunning(j *Job) {
	m.running.Add(1)
	m.transition(j, StateRunning, journalRecord{}, nil)
}

// SetDone records the result (the full response body the GET endpoint will
// return) and its digest (SHA-256 of the deterministic result section).
func (m *Manager) SetDone(j *Job, result json.RawMessage, digest string) {
	m.done.Add(1)
	m.transition(j, StateDone, journalRecord{Result: result, Digest: digest}, func() {
		j.result = result
		j.digest = digest
	})
}

// SetFailed records a failure.
func (m *Manager) SetFailed(j *Job, msg string) {
	m.failed.Add(1)
	m.transition(j, StateFailed, journalRecord{Error: msg}, func() { j.errMsg = msg })
}

// SetCancelled records a client cancellation.
func (m *Manager) SetCancelled(j *Job, msg string) {
	m.cancelled.Add(1)
	m.transition(j, StateCancelled, journalRecord{Error: msg}, func() { j.errMsg = msg })
}

// SetInterrupted records a drain interruption; the journal record is what a
// restarted server resumes from.
func (m *Manager) SetInterrupted(j *Job, msg string) {
	m.interrupted.Add(1)
	m.transition(j, StateInterrupted, journalRecord{Error: msg}, func() { j.errMsg = msg })
}

// Progress publishes one un-journaled progress event (SSE only — progress is
// derivable by re-running, so it does not earn journal writes).
func (m *Manager) Progress(j *Job, data any) {
	raw, err := json.Marshal(data)
	if err != nil {
		return
	}
	m.mu.Lock()
	if !j.state.final() {
		m.publishLocked(j, Event{Type: "progress", Data: raw})
	}
	m.mu.Unlock()
}

// publishStateLocked emits the job's current state as a "state" event.
func (m *Manager) publishStateLocked(j *Job) {
	data, _ := json.Marshal(StateEventData{State: j.state, Error: j.errMsg, Resumed: j.resumed})
	m.publishLocked(j, Event{Type: "state", Data: data, final: j.state.final()})
}

// publishLocked assigns the next event id, appends to the bounded ring and
// wakes every EventsSince waiter.
func (m *Manager) publishLocked(j *Job, ev Event) {
	j.nextEvent++
	ev.ID = j.nextEvent
	j.events = append(j.events, ev)
	if over := len(j.events) - m.cfg.MaxEvents; over > 0 {
		j.events = append(j.events[:0:0], j.events[over:]...)
		j.dropped += int64(over)
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// EventsSince returns a copy of the job's retained events with ID > afterID,
// plus a channel that is closed the next time any event is published — the
// SSE loop's wait handle. A reconnect whose afterID predates the ring's head
// gets everything retained (the ring bound is the documented replay horizon).
func (m *Manager) EventsSince(j *Job, afterID int64) ([]Event, <-chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, ev := range j.events {
		if ev.ID > afterID {
			out = append(out, ev)
		}
	}
	return out, j.changed
}

// CancelActive invokes every non-final job's cancellation hook with cause and
// records it as the standing drain cause, so runs that register their hook
// later are cancelled on registration. Returns how many hooks were invoked.
func (m *Manager) CancelActive(cause error) int {
	m.mu.Lock()
	m.drainCause = cause
	var cancels []func(error)
	for _, j := range m.jobs {
		if !j.state.final() && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c(cause)
	}
	return len(cancels)
}

// Draining reports whether CancelActive has been called, and with what cause.
func (m *Manager) Draining() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drainCause != nil, m.drainCause
}

// Counts returns the lifetime transition counters.
func (m *Manager) Counts() Counters {
	return Counters{
		Queued:      m.queued.Load(),
		Running:     m.running.Load(),
		Done:        m.done.Load(),
		Failed:      m.failed.Load(),
		Cancelled:   m.cancelled.Load(),
		Interrupted: m.interrupted.Load(),
		Resumed:     m.resumed.Load(),
		Active:      m.active.Load(),
	}
}

// JournalStats exposes the journal's durability counters.
func (m *Manager) JournalStats() oraclestore.RecordLogStats {
	return m.log.Stats()
}

// JournalPath returns the journal file path, empty when memory-only.
func (m *Manager) JournalPath() string { return m.cfg.Path }

// journalLocked appends one record; journal failures degrade (RecordLog
// counts them) rather than failing the transition.
func (m *Manager) journalLocked(rec journalRecord) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if err := m.log.Append(payload); err != nil && m.cfg.Logf != nil {
		m.cfg.Logf("jobs: journal append: %v", err)
	}
}

// Sync flushes the journal to stable storage.
func (m *Manager) Sync() error { return m.log.Sync() }

// Close syncs and closes the journal. Jobs stay readable; transitions stop
// being journaled (and error through RecordLog, logged only).
func (m *Manager) Close() error { return m.log.Close() }
