// Package cliutil holds the workload-loading logic shared by the command
// line tools: resolving builtin workloads by name or reading floorplan and
// test-spec files from disk.
package cliutil

import (
	"fmt"
	"os"

	"repro/internal/floorplan"
	"repro/internal/testspec"
)

// BuiltinWorkloads lists the workload names LoadWorkload accepts without
// files.
func BuiltinWorkloads() []string { return []string{"alpha21364", "figure1"} }

// LoadWorkload resolves a test-scheduling workload:
//
//   - workload != "": a builtin name ("alpha21364" or "figure1");
//   - otherwise both flpPath and specPath must name files: a HotSpot ".flp"
//     floorplan and a test spec in the `name functional test seconds`
//     format.
func LoadWorkload(workload, flpPath, specPath string) (*testspec.Spec, error) {
	switch workload {
	case "alpha21364":
		return testspec.Alpha21364(), nil
	case "figure1", "fig1":
		return testspec.Figure1(), nil
	case "":
		// fall through to file loading
	default:
		return nil, fmt.Errorf("unknown builtin workload %q (have: %v)", workload, BuiltinWorkloads())
	}
	if flpPath == "" || specPath == "" {
		return nil, fmt.Errorf("need either -workload <name> or both -flp <file> and -spec <file>")
	}
	fp, err := LoadFloorplan(flpPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(specPath)
	if err != nil {
		return nil, fmt.Errorf("opening test spec: %w", err)
	}
	defer f.Close()
	spec, err := testspec.Parse(f, specPath, fp)
	if err != nil {
		return nil, fmt.Errorf("parsing test spec %s: %w", specPath, err)
	}
	return spec, nil
}

// LoadFloorplan reads a ".flp" floorplan from disk.
func LoadFloorplan(path string) (*floorplan.Floorplan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening floorplan: %w", err)
	}
	defer f.Close()
	fp, err := floorplan.Parse(f, path)
	if err != nil {
		return nil, fmt.Errorf("parsing floorplan %s: %w", path, err)
	}
	return fp, nil
}
