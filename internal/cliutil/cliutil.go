// Package cliutil holds the workload-loading and flag-parsing logic shared
// by the command line tools: resolving builtin workloads by name, reading
// floorplan and test-spec files from disk, and the shared flag syntaxes
// (byte sizes, panel widths).
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/linalg"
	"repro/internal/testspec"
)

// ParseByteSize reads "262144", "256K", "64M" or "2G" (case-insensitive,
// optional trailing "B") into bytes; empty means unbounded (0). The shared
// syntax of -store-budget and -peak-bytes.
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.TrimSuffix(strings.ToUpper(s), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, strings.TrimSuffix(u, "K")
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, strings.TrimSuffix(u, "M")
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, strings.TrimSuffix(u, "G")
	}
	n, err := strconv.ParseInt(u, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q (want e.g. 262144, 256K, 64M)", s)
	}
	return n * mult, nil
}

// ParsePanelWidth reads a -panel flag value: "" or "0" selects the host
// default, "auto" the measured micro-calibration (linalg.PanelWidthAuto),
// and a positive integer an explicit width.
func ParsePanelWidth(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch s {
	case "", "0":
		return 0, nil
	case "auto":
		return linalg.PanelWidthAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("invalid panel width %q (want a positive integer or \"auto\")", s)
	}
	return n, nil
}

// BuiltinWorkloads lists the workload names LoadWorkload accepts without
// files.
func BuiltinWorkloads() []string { return []string{"alpha21364", "figure1"} }

// LoadWorkload resolves a test-scheduling workload:
//
//   - workload != "": a builtin name ("alpha21364" or "figure1");
//   - otherwise both flpPath and specPath must name files: a HotSpot ".flp"
//     floorplan and a test spec in the `name functional test seconds`
//     format.
func LoadWorkload(workload, flpPath, specPath string) (*testspec.Spec, error) {
	switch workload {
	case "alpha21364":
		return testspec.Alpha21364(), nil
	case "figure1", "fig1":
		return testspec.Figure1(), nil
	case "":
		// fall through to file loading
	default:
		return nil, fmt.Errorf("unknown builtin workload %q (have: %v)", workload, BuiltinWorkloads())
	}
	if flpPath == "" || specPath == "" {
		return nil, fmt.Errorf("need either -workload <name> or both -flp <file> and -spec <file>")
	}
	fp, err := LoadFloorplan(flpPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(specPath)
	if err != nil {
		return nil, fmt.Errorf("opening test spec: %w", err)
	}
	defer f.Close()
	spec, err := testspec.Parse(f, specPath, fp)
	if err != nil {
		return nil, fmt.Errorf("parsing test spec %s: %w", specPath, err)
	}
	return spec, nil
}

// LoadFloorplan reads a ".flp" floorplan from disk.
func LoadFloorplan(path string) (*floorplan.Floorplan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening floorplan: %w", err)
	}
	defer f.Close()
	fp, err := floorplan.Parse(f, path)
	if err != nil {
		return nil, fmt.Errorf("parsing floorplan %s: %w", path, err)
	}
	return fp, nil
}
