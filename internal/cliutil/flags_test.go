package cliutil

import (
	"testing"

	"repro/internal/linalg"
)

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"", 0, false},
		{"262144", 262144, false},
		{"256K", 256 << 10, false},
		{"256k", 256 << 10, false},
		{"64M", 64 << 20, false},
		{"64MB", 64 << 20, false},
		{"2G", 2 << 30, false},
		{" 16m ", 16 << 20, false},
		{"-1", 0, true},
		{"64X", 0, true},
		{"lots", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseByteSize(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseByteSize(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParsePanelWidth(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"auto", linalg.PanelWidthAuto, false},
		{"AUTO", linalg.PanelWidthAuto, false},
		{" auto ", linalg.PanelWidthAuto, false},
		{"8", 8, false},
		{"32", 32, false},
		{"-4", 0, true},
		{"wide", 0, true},
	}
	for _, tc := range cases {
		got, err := ParsePanelWidth(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParsePanelWidth(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("ParsePanelWidth(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
