package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/testspec"
)

func TestLoadWorkloadBuiltins(t *testing.T) {
	for _, name := range BuiltinWorkloads() {
		spec, err := LoadWorkload(name, "", "")
		if err != nil || spec == nil {
			t.Errorf("LoadWorkload(%q) failed: %v", name, err)
		}
	}
	if _, err := LoadWorkload("fig1", "", ""); err != nil {
		t.Errorf("alias fig1 failed: %v", err)
	}
	if _, err := LoadWorkload("bogus", "", ""); err == nil {
		t.Error("unknown builtin should fail")
	}
	if _, err := LoadWorkload("", "", ""); err == nil {
		t.Error("no workload and no files should fail")
	}
	if _, err := LoadWorkload("", "only.flp", ""); err == nil {
		t.Error("missing spec path should fail")
	}
}

func TestLoadWorkloadFromFiles(t *testing.T) {
	dir := t.TempDir()
	flpPath := filepath.Join(dir, "chip.flp")
	specPath := filepath.Join(dir, "tests.txt")

	fp := floorplan.Figure1SoC()
	if err := os.WriteFile(flpPath, []byte(floorplan.Format(fp)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, []byte(testspec.Format(testspec.Figure1())), 0o644); err != nil {
		t.Fatal(err)
	}

	spec, err := LoadWorkload("", flpPath, specPath)
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumCores() != 7 {
		t.Errorf("NumCores = %d, want 7", spec.NumCores())
	}

	// Missing files and malformed content.
	if _, err := LoadWorkload("", filepath.Join(dir, "nope.flp"), specPath); err == nil {
		t.Error("missing floorplan should fail")
	}
	if _, err := LoadWorkload("", flpPath, filepath.Join(dir, "nope.txt")); err == nil {
		t.Error("missing spec should fail")
	}
	badFlp := filepath.Join(dir, "bad.flp")
	if err := os.WriteFile(badFlp, []byte("not a floorplan\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkload("", badFlp, specPath); err == nil {
		t.Error("malformed floorplan should fail")
	}
	badSpec := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badSpec, []byte("C1 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkload("", flpPath, badSpec); err == nil {
		t.Error("malformed spec should fail")
	}
}

func TestLoadFloorplan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.flp")
	if err := os.WriteFile(path, []byte(floorplan.Format(floorplan.Alpha21364())), 0o644); err != nil {
		t.Fatal(err)
	}
	fp, err := LoadFloorplan(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 15 {
		t.Errorf("NumBlocks = %d, want 15", fp.NumBlocks())
	}
}
