package thermalsched

import (
	"fmt"
	"io"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/oraclestore"
	"repro/internal/schedule"
	"repro/internal/testspec"
	"repro/internal/thermal"
)

// System bundles everything needed to schedule one SoC: the test spec, the
// full thermal model, the reduced session model and the simulation oracle.
// It is safe for concurrent use; the only internal mutability is the
// memoizing oracle cache, which is itself concurrency-safe. Repeated
// GenerateSchedule / SessionMaxTemp calls on one System answer previously
// simulated sessions from the cache.
//
// With SystemOptions.CacheDir set the cache is two-tier: every distinct
// session simulation is also spilled to a persistent, content-addressed
// store in that directory, and a later process building the same system
// (same floorplan geometry, package, powers and solver backend) warm-starts
// from it without re-simulating. Call Close to flush the store.
type System struct {
	spec   *testspec.Spec
	model  *thermal.Model
	sm     *core.SessionModel
	sim    *core.SimOracle
	oracle *core.CachedOracle

	store      *oraclestore.Store
	storeCache *oraclestore.SystemCache
}

// SystemOptions tunes System construction beyond the spec and package.
type SystemOptions struct {
	// CacheDir roots the persistent oracle cache; empty disables the
	// persistent tier (the in-memory memo cache is always on).
	CacheDir string
	// StoreBudget caps the cache directory in bytes: at open, record files
	// are evicted least-recently-used-first until the directory fits (this
	// system's own file is freshly touched, so it is the last candidate).
	// 0 means unbounded. Ignored without CacheDir.
	StoreBudget int64
}

// NewSystem builds a System for a test spec under a package configuration.
func NewSystem(spec *TestSpec, cfg PackageConfig) (*System, error) {
	return NewSystemWithOptions(spec, cfg, SystemOptions{})
}

// NewSystemWithOptions builds a System with explicit options.
func NewSystemWithOptions(spec *TestSpec, cfg PackageConfig, opts SystemOptions) (*System, error) {
	model, err := thermal.NewModel(spec.Floorplan(), cfg)
	if err != nil {
		return nil, fmt.Errorf("thermalsched: building thermal model: %w", err)
	}
	sm, err := core.NewSessionModel(model, spec.Profile(), 0)
	if err != nil {
		return nil, fmt.Errorf("thermalsched: building session model: %w", err)
	}
	sim := core.NewSimOracle(model, spec.Profile())
	s := &System{
		spec:  spec,
		model: model,
		sm:    sm,
		sim:   sim,
	}
	var inner core.Oracle = sim
	if opts.CacheDir != "" {
		store, err := oraclestore.Open(opts.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("thermalsched: opening oracle cache: %w", err)
		}
		sc, err := store.System(oraclestore.DescForModel(model, spec.Profile()))
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("thermalsched: opening oracle cache: %w", err)
		}
		if opts.StoreBudget > 0 {
			if _, err := store.Evict(opts.StoreBudget); err != nil {
				store.Close()
				return nil, fmt.Errorf("thermalsched: evicting oracle cache to budget: %w", err)
			}
		}
		s.store, s.storeCache = store, sc
		inner = sc.Wrap(sim)
	}
	s.oracle = core.NewCachedOracle(inner)
	return s, nil
}

// Close flushes and closes the persistent oracle cache, if any. The System
// keeps answering queries afterwards (from memory and fresh simulation);
// only disk spilling stops. Safe to call on a cache-less System.
func (s *System) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// OracleStats returns the memoized oracle's (hits, misses) counters — misses
// equal the number of distinct sessions ever simulated by this System.
func (s *System) OracleStats() (hits, misses int64) { return s.oracle.Stats() }

// StoreStats returns the persistent tier's (hits, misses) counters: hits are
// sessions answered from disk instead of simulation. Zero without CacheDir.
func (s *System) StoreStats() (hits, misses int64) {
	if s.storeCache == nil {
		return 0, 0
	}
	return s.storeCache.Stats()
}

// StoreUsage returns the persistent cache directory's record-file count and
// total size in bytes — the quantities SystemOptions.StoreBudget bounds.
// Zero without CacheDir.
func (s *System) StoreUsage() (files int, bytes int64) {
	if s.store == nil {
		return 0, 0
	}
	st, err := s.store.Stats()
	if err != nil {
		return 0, 0
	}
	return st.Files, st.Bytes
}

// Spec returns the test spec.
func (s *System) Spec() *TestSpec { return s.spec }

// Model returns the full RC thermal model.
func (s *System) Model() *ThermalModel { return s.model }

// SessionModel returns the reduced session thermal model.
func (s *System) SessionModel() *SessionModel { return s.sm }

// GenerateSchedule runs the paper's Algorithm 1 and returns the thermal-safe
// schedule plus its effort accounting.
func (s *System) GenerateSchedule(cfg ScheduleConfig) (*ScheduleResult, error) {
	return core.Generate(s.spec, s.sm, s.oracle, cfg)
}

// SimulateSession returns the steady-state temperature field when exactly
// the cores in active are testing (all others idle).
func (s *System) SimulateSession(active []int) (*SteadyResult, error) {
	pm, err := s.spec.Profile().TestPowerMap(active)
	if err != nil {
		return nil, err
	}
	return s.model.SteadyState(pm)
}

// SimulateSessionTransient integrates the session's thermal transient from
// ambient.
func (s *System) SimulateSessionTransient(active []int, opts TransientOptions) (*TransientResult, error) {
	pm, err := s.spec.Profile().TestPowerMap(active)
	if err != nil {
		return nil, err
	}
	return s.model.Transient(pm, opts)
}

// SessionMaxTemp returns the hottest active-core temperature of a session
// (°C) — the quantity compared against TL.
func (s *System) SessionMaxTemp(active []int) (float64, error) {
	temps, err := s.oracle.BlockTemps(active)
	if err != nil {
		return 0, err
	}
	mx := math.Inf(-1)
	for _, c := range active {
		mx = math.Max(mx, temps[c])
	}
	return mx, nil
}

// STC evaluates the session thermal characteristic of a candidate session
// with unit weights — the cheap score Algorithm 1 packs against.
func (s *System) STC(active []int) (float64, error) {
	return s.sm.STC(active, nil)
}

// SequentialSchedule returns the trivially safe one-core-per-session
// schedule.
func (s *System) SequentialSchedule() Schedule {
	return baseline.Sequential(s.spec)
}

// PowerConstrainedSchedule runs the classic greedy power-capped scheduler
// (first-fit decreasing under a chip power budget in watts).
func (s *System) PowerConstrainedSchedule(budget float64) (Schedule, error) {
	return baseline.GreedyPower(s.spec, budget)
}

// OptimalPowerSchedule returns the minimum-session schedule under the power
// budget (exact subset DP; core count limited, uniform test lengths only).
func (s *System) OptimalPowerSchedule(budget float64) (Schedule, error) {
	return baseline.OptimalPower(s.spec, budget)
}

// CheckSchedule simulates every session of a schedule and reports the ones
// that reach or exceed tl, plus the schedule's peak temperature.
func (s *System) CheckSchedule(sc Schedule, tl float64) ([]SessionViolation, float64, error) {
	checker := baseline.ThermalChecker{BlockTemps: s.oracle.BlockTemps}
	return checker.Check(sc, tl)
}

// NewSession builds a session from core indices (validated).
func NewSession(cores ...int) (Session, error) { return schedule.NewSession(cores...) }

// NewSchedule builds a schedule from sessions.
func NewSchedule(sessions ...Session) Schedule { return schedule.New(sessions...) }

// FormatSchedule renders a schedule in the line-oriented text form
// ParseSchedule reads back ("TS1: C2 C3 C4").
func FormatSchedule(sc Schedule, spec *TestSpec) string { return schedule.Format(sc, spec) }

// ParseSchedule reads the FormatSchedule representation and validates it
// against spec (every core exactly once).
func ParseSchedule(r io.Reader, spec *TestSpec) (Schedule, error) { return schedule.Parse(r, spec) }
