// Package thermalsched is a library for rapid generation of thermal-safe
// SoC test schedules, reproducing Rosinger, Al-Hashimi and Chakrabarty,
// "Rapid generation of thermal-safe test schedules" (DATE 2005).
//
// A system-on-chip is tested core by core; testing several cores at once
// shortens test time but concentrates heat. Classic schedulers cap the
// *chip-level power* of each test session, which — because on-die power
// density is highly non-uniform — does not prevent local hot spots. This
// library embeds thermal awareness into scheduling instead:
//
//   - a compact HotSpot-style RC thermal simulator (steady-state and
//     transient) acts as the accurate-but-expensive oracle;
//   - the paper's reduced *test-session thermal model* scores candidate
//     sessions in microseconds via the session thermal characteristic (STC);
//   - Algorithm 1 packs sessions up to a user-chosen STC limit (STCL),
//     validates each candidate with one oracle simulation, and inflates the
//     weights of violating cores so they land in emptier sessions on retry.
//
// The STCL knob trades schedule length against simulation effort: tight
// limits give longer schedules found on the first attempt; relaxed limits
// give near-minimal schedules at the cost of many more simulations.
//
// # Quick start
//
//	sys, err := thermalsched.NewSystem(thermalsched.AlphaWorkload(), thermalsched.DefaultPackage())
//	if err != nil { ... }
//	res, err := sys.GenerateSchedule(thermalsched.ScheduleConfig{TL: 165, STCL: 60})
//	if err != nil { ... }
//	fmt.Println(res.Schedule.Describe(sys.Spec()))
//
// The subpackages under internal/ hold the implementation; this package is
// the stable public surface and re-exports everything a user needs.
package thermalsched

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/testspec"
	"repro/internal/thermal"
)

// Re-exported types. Aliases keep the internal packages and the public API
// interchangeable: values returned here can be passed to any subsystem.
type (
	// Rect is an axis-aligned rectangle (metres).
	Rect = geom.Rect
	// Block is a named core on the die.
	Block = floorplan.Block
	// Floorplan is a validated block placement.
	Floorplan = floorplan.Floorplan
	// RandomFloorplanOptions seeds the synthetic floorplan generator.
	RandomFloorplanOptions = floorplan.RandomOptions

	// PowerProfile holds per-core functional and test powers.
	PowerProfile = power.Profile

	// TestSpec is a complete scheduling problem: floorplan + powers + test
	// lengths.
	TestSpec = testspec.Spec

	// PackageConfig describes the thermal package stack.
	PackageConfig = thermal.PackageConfig
	// ThermalModel is the compact RC model with steady-state and transient
	// solvers.
	ThermalModel = thermal.Model
	// SteadyResult is a steady-state temperature field.
	SteadyResult = thermal.SteadyResult
	// TransientOptions configures transient runs.
	TransientOptions = thermal.TransientOptions
	// TransientResult is a transient temperature trace.
	TransientResult = thermal.TransientResult
	// Integrator selects the transient time-integration scheme.
	Integrator = thermal.Integrator
	// GridModel is the fine-grid discretisation used for validation and
	// heatmaps.
	GridModel = thermal.GridModel
	// GridResult is a grid steady-state field with heatmap rendering.
	GridResult = thermal.GridResult

	// SessionModel is the paper's reduced test-session thermal model.
	SessionModel = core.SessionModel
	// ScheduleConfig parameterises Algorithm 1 (TL, STCL, weights, order).
	ScheduleConfig = core.Config
	// ScheduleResult is the outcome of a generator run, including the
	// simulation-effort accounting of the paper's Table 1.
	ScheduleResult = core.Result
	// OrderPolicy selects the candidate scan order.
	OrderPolicy = core.OrderPolicy
	// Oracle is the accurate-simulation interface consumed by the generator.
	Oracle = core.Oracle
	// CachedOracle memoizes any Oracle by active set, concurrency-safe.
	CachedOracle = core.CachedOracle

	// Session is a set of concurrently tested cores.
	Session = schedule.Session
	// Schedule is an ordered list of sessions.
	Schedule = schedule.Schedule

	// SessionViolation reports a session exceeding a temperature limit.
	SessionViolation = baseline.SessionViolation
)

// Candidate scan orders for ScheduleConfig.Order.
const (
	OrderByTCDesc      = core.OrderByTCDesc
	OrderByDensityDesc = core.OrderByDensityDesc
	OrderByPowerDesc   = core.OrderByPowerDesc
	OrderByAreaAsc     = core.OrderByAreaAsc
	OrderInput         = core.OrderInput
)

// Transient integrators for TransientOptions.Integrator.
const (
	CrankNicolson = thermal.CrankNicolson
	RK4           = thermal.RK4
)

// NewCachedOracle wraps an Oracle with a concurrency-safe memo table keyed
// by active set. Deterministic oracles (all of them, per the Oracle
// contract) answer repeated session queries from the cache.
func NewCachedOracle(inner Oracle) *CachedOracle { return core.NewCachedOracle(inner) }

// DefaultPackage returns the calibrated package stack used by the paper
// reproduction (see DESIGN.md §3 for the calibration rationale).
func DefaultPackage() PackageConfig { return thermal.DefaultPackageConfig() }

// AlphaWorkload returns the paper's evaluation workload: the reconstructed
// 15-core Alpha 21364 with test powers 1.5–8× functional and 1 s tests.
func AlphaWorkload() *TestSpec { return testspec.Alpha21364() }

// Figure1Workload returns the paper's motivational 7-core SoC with 15 W
// per-core test power.
func Figure1Workload() *TestSpec { return testspec.Figure1() }

// Alpha21364Floorplan returns the reconstructed 15-core floorplan.
func Alpha21364Floorplan() *Floorplan { return floorplan.Alpha21364() }

// Figure1Floorplan returns the 7-core motivational floorplan.
func Figure1Floorplan() *Floorplan { return floorplan.Figure1SoC() }

// ParseFloorplan reads a HotSpot ".flp" description.
func ParseFloorplan(r io.Reader, name string) (*Floorplan, error) {
	return floorplan.Parse(r, name)
}

// FormatFloorplan renders a floorplan in ".flp" format.
func FormatFloorplan(fp *Floorplan) string { return floorplan.Format(fp) }

// RandomFloorplan generates a deterministic synthetic floorplan.
func RandomFloorplan(opts RandomFloorplanOptions) (*Floorplan, error) {
	return floorplan.Random(opts)
}

// NewPowerProfile builds a power profile from explicit per-core functional
// and test powers (W).
func NewPowerProfile(fp *Floorplan, functional, test []float64) (*PowerProfile, error) {
	return power.NewProfile(fp, functional, test)
}

// PowerFromFactors builds a power profile from functional powers and test
// multipliers (the paper's 1.5–8× style).
func PowerFromFactors(fp *Floorplan, functional, factors []float64) (*PowerProfile, error) {
	return power.FromFactors(fp, functional, factors)
}

// NewTestSpec binds a power profile to per-core test lengths (seconds).
func NewTestSpec(name string, profile *PowerProfile, lengths []float64) (*TestSpec, error) {
	return testspec.New(name, profile, lengths)
}

// UniformTestSpec builds a spec where every test lasts the same time.
func UniformTestSpec(name string, profile *PowerProfile, seconds float64) (*TestSpec, error) {
	return testspec.UniformLength(name, profile, seconds)
}

// ParseTestSpec reads the textual workload format (core, functional W,
// test W, seconds) for the given floorplan.
func ParseTestSpec(r io.Reader, name string, fp *Floorplan) (*TestSpec, error) {
	return testspec.Parse(r, name, fp)
}

// NewThermalModel assembles (and factorizes) the compact RC model of a
// floorplan in a package.
func NewThermalModel(fp *Floorplan, cfg PackageConfig) (*ThermalModel, error) {
	return thermal.NewModel(fp, cfg)
}

// NewGridThermalModel discretises the die into an nx×ny cell grid — the
// fine-grained cross-check of the block model, with heatmap rendering.
func NewGridThermalModel(fp *Floorplan, cfg PackageConfig, nx, ny int) (*GridModel, error) {
	return thermal.NewGridModel(fp, cfg, nx, ny)
}
