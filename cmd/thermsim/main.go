// Command thermsim runs the compact RC thermal simulator on one test
// session: steady-state by default, or a transient trace with -transient.
//
// Usage:
//
//	thermsim -workload alpha21364 -active IntExec,IntReg
//	thermsim -workload figure1 -active C2,C3,C4 -transient -duration 5
//	thermsim -flp chip.flp -spec tests.txt -active B00,B01
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/linalg"
	"repro/internal/thermal"
)

func main() {
	var (
		workload   = flag.String("workload", "", "builtin workload: alpha21364 or figure1")
		flpPath    = flag.String("flp", "", "floorplan file (HotSpot .flp format)")
		specPath   = flag.String("spec", "", "test spec file (name functional test seconds)")
		activeStr  = flag.String("active", "", "comma-separated core names under test (empty = all)")
		transient  = flag.Bool("transient", false, "run a transient instead of steady state")
		duration   = flag.Float64("duration", 5, "transient duration (s)")
		step       = flag.Float64("step", 0, "transient step (s), 0 = auto")
		grid       = flag.Int("grid", 0, "also solve an N×N grid model and print its heatmap")
		gridOrd    = flag.String("gridord", "nd", "grid factor ordering: nd (nested dissection) or rcm")
		gridFill   = flag.Int("fillbudget", 0, "grid factor fill budget in non-zeros; 0 = default 2^24")
		supernodal = flag.Bool("supernodal", true,
			"factor the grid model with the panel-blocked supernodal kernel "+
				"(false = scalar reference kernel; both produce bit-identical factors)")
		panelWidth = flag.String("panel", "", "max supernodal panel width in columns: a positive integer, \"auto\" to micro-calibrate for the host, or empty for the default")
		relax      = flag.Float64("relax", -1,
			"relaxed-amalgamation pad budget as a fraction of a panel's packed entries "+
				"(negative = default 0.10, 0 disables padding)")
		peakBytes = flag.String("peak-bytes", "", "grid factorization peak memory with optional K/M/G suffix, e.g. 2G; over it, factor panels spill to disk (empty: unbounded)")
		spillDir  = flag.String("spill-dir", "", "directory for out-of-core factor panel files (empty: os.TempDir)")
	)
	flag.Parse()

	ord, err := linalg.ParseOrdering(*gridOrd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	width, err := cliutil.ParsePanelWidth(*panelWidth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim: -panel:", err)
		os.Exit(1)
	}
	peak, err := cliutil.ParseByteSize(*peakBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim: -peak-bytes:", err)
		os.Exit(1)
	}
	factor := linalg.FactorAuto
	if !*supernodal {
		factor = linalg.FactorScalar
	}
	panel := linalg.SupernodalOptions{MaxPanel: width}
	switch {
	case *relax < 0: // keep the canonical default ratio
	case *relax == 0:
		panel.RelaxRatio, panel.RelaxZeros = -1, -1
	default:
		panel.RelaxRatio = *relax
	}
	gopts := thermal.GridOptions{
		Ordering: ord, FillBudget: *gridFill, Factor: factor, Panel: panel,
		PeakBytesBudget: peak, SpillDir: *spillDir,
	}
	if err := run(*workload, *flpPath, *specPath, *activeStr, *transient, *duration, *step, *grid, gopts); err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
}

func run(workload, flpPath, specPath, activeStr string, transient bool, duration, step float64, grid int, gopts thermal.GridOptions) error {
	spec, err := cliutil.LoadWorkload(workload, flpPath, specPath)
	if err != nil {
		return err
	}
	fp := spec.Floorplan()
	var active []int
	if activeStr == "" {
		for i := 0; i < fp.NumBlocks(); i++ {
			active = append(active, i)
		}
	} else {
		for _, name := range strings.Split(activeStr, ",") {
			i, err := fp.IndexOf(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			active = append(active, i)
		}
	}
	model, err := thermal.NewModel(fp, thermal.DefaultPackageConfig())
	if err != nil {
		return err
	}
	pm, err := spec.Profile().TestPowerMap(active)
	if err != nil {
		return err
	}

	if !transient {
		res, err := model.SteadyState(pm)
		if err != nil {
			return err
		}
		fmt.Printf("steady state, %d active core(s), %.1f W total\n", len(active), res.TotalPower())
		fmt.Print(res.Describe())
		if grid > 0 {
			gm, err := thermal.NewGridModelWithOptions(fp, thermal.DefaultPackageConfig(), grid, grid, gopts)
			if err != nil {
				return err
			}
			gres, err := gm.SteadyStateActive(pm, active)
			if err != nil {
				return err
			}
			fmt.Printf("\ngrid model (%d×%d, %s ordering, %s backend): max %.2f °C (block model: %.2f °C)\n",
				grid, grid, gm.Ordering(), gm.SolverBackend(), gres.MaxTemp(), res.MaxTemp())
			fs := gm.FactorStats()
			if fs.Panels > 0 {
				fmt.Printf("factor: %s kernel, %v numeric, %d nnz, %d panels (max width %d, %d padded zeros), batch width %d\n",
					fs.Mode, fs.FactorTime.Round(time.Microsecond), fs.FactorNNZ,
					fs.Panels, fs.MaxPanelWidth, fs.PaddedZeros, fs.BatchWidth)
			} else {
				fmt.Printf("factor: %s kernel, %v numeric, %d nnz, batch width %d\n",
					fs.Mode, fs.FactorTime.Round(time.Microsecond), fs.FactorNNZ, fs.BatchWidth)
			}
			switch {
			case fs.SpilledPanels > 0:
				fmt.Printf("spill: %d panels (%d bytes) out of core, peak resident %d of %d bytes\n",
					fs.SpilledPanels, fs.SpilledBytes, fs.PeakResidentBytes, fs.PeakFactorBytes)
			case fs.SpillDegraded:
				fmt.Println("spill: degraded — spill device failed, factored in core (budget waived)")
			}
			fmt.Print(gres.Heatmap())
		}
		return nil
	}
	if grid > 0 {
		return fmt.Errorf("-grid is only available for steady-state runs")
	}

	tr, err := model.Transient(pm, thermal.TransientOptions{
		Duration:    duration,
		Step:        step,
		SampleEvery: duration / 20,
	})
	if err != nil {
		return err
	}
	fmt.Printf("transient, %d active core(s), %.1f s\n", len(active), duration)
	fmt.Printf("%10s %12s %12s\n", "t(s)", "maxT(°C)", "sink(°C)")
	for _, s := range tr.Samples {
		fmt.Printf("%10.3f %12.3f %12.3f\n", s.Time, s.MaxTemp, s.SinkTemp)
	}
	fmt.Printf("final max temperature: %.2f °C\n", tr.FinalMaxTemp())
	return nil
}
