package main

import "testing"

func TestRunSteadyState(t *testing.T) {
	if err := run("alpha21364", "", "", "IntExec,IntReg", false, 0, 0, 16); err != nil {
		t.Fatalf("steady run: %v", err)
	}
}

func TestRunAllCores(t *testing.T) {
	if err := run("figure1", "", "", "", false, 0, 0, 0); err != nil {
		t.Fatalf("all-cores run: %v", err)
	}
}

func TestRunGridRejectedForTransient(t *testing.T) {
	if err := run("figure1", "", "", "C2", true, 0.5, 0.002, 8); err == nil {
		t.Error("grid with transient should fail")
	}
}

func TestRunTransient(t *testing.T) {
	if err := run("figure1", "", "", "C2,C3,C4", true, 0.5, 0.002, 0); err != nil {
		t.Fatalf("transient run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", "", "", false, 0, 0, 0); err == nil {
		t.Error("unknown workload should fail")
	}
	if err := run("alpha21364", "", "", "NoSuchCore", false, 0, 0, 0); err == nil {
		t.Error("unknown core should fail")
	}
	if err := run("alpha21364", "", "", "IntExec", true, -1, 0, 0); err == nil {
		t.Error("negative duration should fail")
	}
}
