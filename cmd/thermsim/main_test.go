package main

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/thermal"
)

func TestRunSteadyState(t *testing.T) {
	if err := run("alpha21364", "", "", "IntExec,IntReg", false, 0, 0, 16, thermal.GridOptions{}); err != nil {
		t.Fatalf("steady run: %v", err)
	}
}

func TestRunSteadyStateGridOptions(t *testing.T) {
	// Both orderings and a starved fill budget (CG fallback) must render.
	for _, opts := range []thermal.GridOptions{
		{Ordering: linalg.OrderRCM},
		{Ordering: linalg.OrderND, FillBudget: 256},
	} {
		if err := run("alpha21364", "", "", "IntExec", false, 0, 0, 12, opts); err != nil {
			t.Fatalf("grid options %+v: %v", opts, err)
		}
	}
}

func TestRunAllCores(t *testing.T) {
	if err := run("figure1", "", "", "", false, 0, 0, 0, thermal.GridOptions{}); err != nil {
		t.Fatalf("all-cores run: %v", err)
	}
}

func TestRunGridRejectedForTransient(t *testing.T) {
	if err := run("figure1", "", "", "C2", true, 0.5, 0.002, 8, thermal.GridOptions{}); err == nil {
		t.Error("grid with transient should fail")
	}
}

func TestRunTransient(t *testing.T) {
	if err := run("figure1", "", "", "C2,C3,C4", true, 0.5, 0.002, 0, thermal.GridOptions{}); err != nil {
		t.Fatalf("transient run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", "", "", "", false, 0, 0, 0, thermal.GridOptions{}); err == nil {
		t.Error("unknown workload should fail")
	}
	if err := run("alpha21364", "", "", "NoSuchCore", false, 0, 0, 0, thermal.GridOptions{}); err == nil {
		t.Error("unknown core should fail")
	}
	if err := run("alpha21364", "", "", "IntExec", true, -1, 0, 0, thermal.GridOptions{}); err == nil {
		t.Error("negative duration should fail")
	}
}
