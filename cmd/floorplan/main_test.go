package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/floorplan"
)

func TestRunBuiltin(t *testing.T) {
	if err := run("alpha21364", "", 0, 0, true, false); err != nil {
		t.Fatalf("builtin describe: %v", err)
	}
	if err := run("figure1-soc", "", 0, 0, false, true); err != nil {
		t.Fatalf("builtin format: %v", err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.flp")
	if err := os.WriteFile(path, []byte(floorplan.Format(floorplan.Figure1SoC())), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 0, 0, true, false); err != nil {
		t.Fatalf("file describe: %v", err)
	}
}

func TestRunRandom(t *testing.T) {
	if err := run("", "", 12, 3, false, false); err != nil {
		t.Fatalf("random: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 0, 0, false, false); err == nil {
		t.Error("no source should fail")
	}
	if err := run("bogus", "", 0, 0, false, false); err == nil {
		t.Error("unknown builtin should fail")
	}
	if err := run("", "/does/not/exist.flp", 0, 0, false, false); err == nil {
		t.Error("missing file should fail")
	}
}
