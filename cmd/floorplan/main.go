// Command floorplan inspects, validates and converts floorplans.
//
// Usage:
//
//	floorplan -builtin alpha21364            # describe a builtin
//	floorplan -file chip.flp -adjacency      # validate + adjacency report
//	floorplan -builtin figure1-soc -format   # re-emit as .flp text
//	floorplan -random 24 -seed 7 -format     # generate a synthetic plan
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/floorplan"
)

func main() {
	var (
		builtin   = flag.String("builtin", "", "builtin floorplan: alpha21364 or figure1-soc")
		file      = flag.String("file", "", "floorplan file (.flp)")
		random    = flag.Int("random", 0, "generate a random floorplan with this many blocks")
		seed      = flag.Int64("seed", 1, "seed for -random")
		adjacency = flag.Bool("adjacency", false, "print the adjacency graph")
		format    = flag.Bool("format", false, "re-emit the floorplan as .flp text")
	)
	flag.Parse()

	if err := run(*builtin, *file, *random, *seed, *adjacency, *format); err != nil {
		fmt.Fprintln(os.Stderr, "floorplan:", err)
		os.Exit(1)
	}
}

func run(builtin, file string, random int, seed int64, adjacency, format bool) error {
	var fp *floorplan.Floorplan
	var err error
	switch {
	case builtin != "":
		fp, err = floorplan.Builtin(builtin)
	case file != "":
		fp, err = cliutil.LoadFloorplan(file)
	case random > 0:
		fp, err = floorplan.Random(floorplan.RandomOptions{Blocks: random, Seed: seed})
	default:
		return fmt.Errorf("need -builtin, -file or -random (builtins: %v)", floorplan.BuiltinNames())
	}
	if err != nil {
		return err
	}

	if format {
		fmt.Print(floorplan.Format(fp))
		return nil
	}
	fmt.Print(fp.Describe())
	adj := floorplan.NewAdjacency(fp)
	if err := adj.Validate(); err != nil {
		return fmt.Errorf("adjacency validation: %w", err)
	}
	fmt.Printf("full tiling: %v\n", fp.IsFullTiling())
	if adjacency {
		fmt.Println()
		fmt.Print(adj.Describe())
	}
	return nil
}
