package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/testspec"
)

func TestParseOrder(t *testing.T) {
	for _, p := range core.OrderPolicies() {
		got, err := parseOrder(p.String())
		if err != nil || got != p {
			t.Errorf("parseOrder(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := parseOrder("nope"); err == nil {
		t.Error("unknown order should fail")
	}
}

func TestRunBuiltinWorkload(t *testing.T) {
	if err := run("alpha21364", "", "", 165, 60, 1.1, "tc-desc", false, true, false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFigure1Workload(t *testing.T) {
	if err := run("figure1", "", "", 130, 40, 1.1, "input", false, false, true, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCustomFiles(t *testing.T) {
	dir := t.TempDir()
	flp := filepath.Join(dir, "c.flp")
	spec := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(flp, []byte(floorplan.Format(floorplan.Figure1SoC())), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec, []byte(testspec.Format(testspec.Figure1())), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", flp, spec, 140, 50, 1.1, "tc-desc", false, false, false, filepath.Join(dir, "out.sched")); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	// Unknown workload.
	if err := run("bogus", "", "", 165, 60, 1.1, "tc-desc", false, false, false, ""); err == nil {
		t.Error("unknown workload should fail")
	}
	// Bad order.
	if err := run("alpha21364", "", "", 165, 60, 1.1, "zigzag", false, false, false, ""); err == nil {
		t.Error("bad order should fail")
	}
	// TL below every BCMT without auto-raise.
	if err := run("alpha21364", "", "", 60, 60, 1.1, "tc-desc", false, false, false, ""); err == nil {
		t.Error("infeasible TL should fail")
	}
	// Same TL with auto-raise succeeds.
	if err := run("alpha21364", "", "", 60, 60, 1.1, "tc-desc", true, false, false, ""); err != nil {
		t.Errorf("auto-raise run failed: %v", err)
	}
}
