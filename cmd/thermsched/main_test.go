package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/testspec"
)

func TestParseOrder(t *testing.T) {
	for _, p := range core.OrderPolicies() {
		got, err := parseOrder(p.String())
		if err != nil || got != p {
			t.Errorf("parseOrder(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := parseOrder("nope"); err == nil {
		t.Error("unknown order should fail")
	}
}

func TestRunBuiltinWorkload(t *testing.T) {
	if err := run(options{workload: "alpha21364", tl: 165, stcl: 60, growth: 1.1, order: "tc-desc", verbose: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFigure1Workload(t *testing.T) {
	if err := run(options{workload: "figure1", tl: 130, stcl: 40, growth: 1.1, order: "input", jsonOut: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCustomFiles(t *testing.T) {
	dir := t.TempDir()
	flp := filepath.Join(dir, "c.flp")
	spec := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(flp, []byte(floorplan.Format(floorplan.Figure1SoC())), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec, []byte(testspec.Format(testspec.Figure1())), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := options{flpPath: flp, specPath: spec, tl: 140, stcl: 50, growth: 1.1, order: "tc-desc",
		savePath: filepath.Join(dir, "out.sched")}
	if err := run(opts); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithCacheDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "oracle-cache")
	// Cold invocation populates the store, warm one reuses it; both succeed
	// and the store directory materialises.
	opts := options{workload: "alpha21364", tl: 165, stcl: 60, growth: 1.1, order: "tc-desc", cacheDir: dir}
	if err := run(opts); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(opts); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Errorf("store directory empty or missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	// Unknown workload.
	if err := run(options{workload: "bogus", tl: 165, stcl: 60, growth: 1.1, order: "tc-desc"}); err == nil {
		t.Error("unknown workload should fail")
	}
	// Bad order.
	if err := run(options{workload: "alpha21364", tl: 165, stcl: 60, growth: 1.1, order: "zigzag"}); err == nil {
		t.Error("bad order should fail")
	}
	// TL below every BCMT without auto-raise.
	low := options{workload: "alpha21364", tl: 60, stcl: 60, growth: 1.1, order: "tc-desc"}
	if err := run(low); err == nil {
		t.Error("infeasible TL should fail")
	}
	// Same TL with auto-raise succeeds.
	low.autoTL = true
	if err := run(low); err != nil {
		t.Errorf("auto-raise run failed: %v", err)
	}
}
