// Command thermsched generates thermal-safe test schedules with the DATE'05
// algorithm.
//
// Usage:
//
//	thermsched -workload alpha21364 -tl 165 -stcl 60
//	thermsched -flp chip.flp -spec tests.txt -tl 150 -stcl 40 -v
//
// The tool prints the schedule, its length, the simulation effort spent
// finding it and the hottest simulated session temperature. With -v it also
// prints per-session STC scores and the per-core solo temperatures (BCMT).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	thermalsched "repro"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/schedule"
)

func main() {
	var (
		workload = flag.String("workload", "", "builtin workload: alpha21364 or figure1")
		flpPath  = flag.String("flp", "", "floorplan file (HotSpot .flp format)")
		specPath = flag.String("spec", "", "test spec file (name functional test seconds)")
		tl       = flag.Float64("tl", 165, "maximum allowable temperature TL (°C)")
		stcl     = flag.Float64("stcl", 60, "session thermal characteristic limit STCL")
		growth   = flag.Float64("growth", 1.1, "weight growth factor on violation")
		orderStr = flag.String("order", "tc-desc", "candidate order: tc-desc, density-desc, power-desc, area-asc, input")
		autoTL   = flag.Bool("auto-raise-tl", false, "raise TL instead of failing when a solo test violates it")
		verbose  = flag.Bool("v", false, "print BCMT and per-session detail")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
		savePath = flag.String("save", "", "write the schedule to this file in the text schedule format")
		cacheDir = flag.String("cachedir", "",
			"directory of the persistent oracle store; repeated invocations warm-start from it")
		timeout = flag.Duration("timeout", 0,
			"abort generation after this long, e.g. 30s (0: no deadline)")
	)
	flag.Parse()

	err := run(options{
		workload: *workload,
		flpPath:  *flpPath,
		specPath: *specPath,
		tl:       *tl,
		stcl:     *stcl,
		growth:   *growth,
		order:    *orderStr,
		autoTL:   *autoTL,
		verbose:  *verbose,
		jsonOut:  *jsonOut,
		savePath: *savePath,
		cacheDir: *cacheDir,
		timeout:  *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsched:", err)
		os.Exit(1)
	}
}

// options carries the flag values into run.
type options struct {
	workload, flpPath, specPath string
	tl, stcl, growth            float64
	order                       string
	autoTL, verbose, jsonOut    bool
	savePath, cacheDir          string
	timeout                     time.Duration
}

func parseOrder(s string) (core.OrderPolicy, error) {
	for _, p := range core.OrderPolicies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown order %q", s)
}

// summary is the -json output shape.
type summary struct {
	Workload   string     `json:"workload"`
	TL         float64    `json:"tl_celsius"`
	STCL       float64    `json:"stcl"`
	Length     float64    `json:"length_seconds"`
	Effort     float64    `json:"effort_seconds"`
	MaxTemp    float64    `json:"max_temp_celsius"`
	Violations int        `json:"violations"`
	Sessions   [][]string `json:"sessions"`
}

func run(opts options) error {
	spec, err := cliutil.LoadWorkload(opts.workload, opts.flpPath, opts.specPath)
	if err != nil {
		return err
	}
	order, err := parseOrder(opts.order)
	if err != nil {
		return err
	}
	// The CLI is a thin front end over the public System API — including the
	// persistent-cache wiring, so -cachedir demonstrates exactly what
	// SystemOptions.CacheDir does. An unopenable cache directory degrades to
	// an in-memory run (schedules stay correct, only warm-starting is lost)
	// rather than failing the invocation.
	sys, err := thermalsched.NewSystemWithOptions(spec, thermalsched.DefaultPackage(),
		thermalsched.SystemOptions{CacheDir: opts.cacheDir})
	if err != nil && opts.cacheDir != "" {
		fmt.Fprintf(os.Stderr, "thermsched: warning: persistent cache unavailable, continuing in-memory: %v\n", err)
		sys, err = thermalsched.NewSystem(spec, thermalsched.DefaultPackage())
	}
	if err != nil {
		return err
	}
	defer sys.Close()
	cfg := core.Config{
		TL:           opts.tl,
		STCL:         opts.stcl,
		WeightGrowth: opts.growth,
		Order:        order,
		AutoRaiseTL:  opts.autoTL,
	}
	if opts.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
		defer cancel()
		cfg.Interrupt = ctx.Err
	}
	res, err := sys.GenerateSchedule(cfg)
	if err != nil {
		return err
	}

	if opts.savePath != "" {
		if err := os.WriteFile(opts.savePath, []byte(schedule.Format(res.Schedule, spec)), 0o644); err != nil {
			return fmt.Errorf("writing schedule: %w", err)
		}
	}
	if opts.jsonOut {
		sum := summary{
			Workload:   spec.Name(),
			TL:         res.EffectiveTL,
			STCL:       opts.stcl,
			Length:     res.Length,
			Effort:     res.Effort,
			MaxTemp:    res.MaxTemp,
			Violations: res.Violations,
		}
		for _, sess := range res.Schedule.Sessions() {
			sum.Sessions = append(sum.Sessions, sess.Names(spec))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}

	fmt.Printf("workload %s: %d cores, sequential length %.0f s\n",
		spec.Name(), spec.NumCores(), spec.TotalTestTime())
	fmt.Println(res.Schedule.Describe(spec))
	fmt.Printf("schedule length:    %.0f s\n", res.Length)
	fmt.Printf("simulation effort:  %.0f s (%d attempts, %d violations)\n",
		res.Effort, res.Attempts, res.Violations)
	fmt.Printf("max temperature:    %.2f °C (TL %.1f °C)\n", res.MaxTemp, res.EffectiveTL)
	if opts.verbose {
		fmt.Println()
		fmt.Println(res.Describe(spec))
		fmt.Println("per-core solo max temperatures (BCMT):")
		for i, b := range res.BCMT {
			fmt.Printf("  %-12s %7.2f °C\n", spec.Test(i).Name, b)
		}
	}
	return nil
}
