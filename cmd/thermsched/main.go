// Command thermsched generates thermal-safe test schedules with the DATE'05
// algorithm.
//
// Usage:
//
//	thermsched -workload alpha21364 -tl 165 -stcl 60
//	thermsched -flp chip.flp -spec tests.txt -tl 150 -stcl 40 -v
//
// The tool prints the schedule, its length, the simulation effort spent
// finding it and the hottest simulated session temperature. With -v it also
// prints per-session STC scores and the per-core solo temperatures (BCMT).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/thermal"
)

func main() {
	var (
		workload = flag.String("workload", "", "builtin workload: alpha21364 or figure1")
		flpPath  = flag.String("flp", "", "floorplan file (HotSpot .flp format)")
		specPath = flag.String("spec", "", "test spec file (name functional test seconds)")
		tl       = flag.Float64("tl", 165, "maximum allowable temperature TL (°C)")
		stcl     = flag.Float64("stcl", 60, "session thermal characteristic limit STCL")
		growth   = flag.Float64("growth", 1.1, "weight growth factor on violation")
		orderStr = flag.String("order", "tc-desc", "candidate order: tc-desc, density-desc, power-desc, area-asc, input")
		autoTL   = flag.Bool("auto-raise-tl", false, "raise TL instead of failing when a solo test violates it")
		verbose  = flag.Bool("v", false, "print BCMT and per-session detail")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
		savePath = flag.String("save", "", "write the schedule to this file in the text schedule format")
	)
	flag.Parse()

	if err := run(*workload, *flpPath, *specPath, *tl, *stcl, *growth, *orderStr, *autoTL, *verbose, *jsonOut, *savePath); err != nil {
		fmt.Fprintln(os.Stderr, "thermsched:", err)
		os.Exit(1)
	}
}

func parseOrder(s string) (core.OrderPolicy, error) {
	for _, p := range core.OrderPolicies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown order %q", s)
}

// summary is the -json output shape.
type summary struct {
	Workload   string     `json:"workload"`
	TL         float64    `json:"tl_celsius"`
	STCL       float64    `json:"stcl"`
	Length     float64    `json:"length_seconds"`
	Effort     float64    `json:"effort_seconds"`
	MaxTemp    float64    `json:"max_temp_celsius"`
	Violations int        `json:"violations"`
	Sessions   [][]string `json:"sessions"`
}

func run(workload, flpPath, specPath string, tl, stcl, growth float64,
	orderStr string, autoTL, verbose, jsonOut bool, savePath string) error {
	spec, err := cliutil.LoadWorkload(workload, flpPath, specPath)
	if err != nil {
		return err
	}
	order, err := parseOrder(orderStr)
	if err != nil {
		return err
	}
	model, err := thermal.NewModel(spec.Floorplan(), thermal.DefaultPackageConfig())
	if err != nil {
		return err
	}
	sm, err := core.NewSessionModel(model, spec.Profile(), 0)
	if err != nil {
		return err
	}
	res, err := core.Generate(spec, sm, core.NewCachedOracle(core.NewSimOracle(model, spec.Profile())), core.Config{
		TL:           tl,
		STCL:         stcl,
		WeightGrowth: growth,
		Order:        order,
		AutoRaiseTL:  autoTL,
	})
	if err != nil {
		return err
	}

	if savePath != "" {
		if err := os.WriteFile(savePath, []byte(schedule.Format(res.Schedule, spec)), 0o644); err != nil {
			return fmt.Errorf("writing schedule: %w", err)
		}
	}
	if jsonOut {
		sum := summary{
			Workload:   spec.Name(),
			TL:         res.EffectiveTL,
			STCL:       stcl,
			Length:     res.Length,
			Effort:     res.Effort,
			MaxTemp:    res.MaxTemp,
			Violations: res.Violations,
		}
		for _, sess := range res.Schedule.Sessions() {
			sum.Sessions = append(sum.Sessions, sess.Names(spec))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}

	fmt.Printf("workload %s: %d cores, sequential length %.0f s\n",
		spec.Name(), spec.NumCores(), spec.TotalTestTime())
	fmt.Println(res.Schedule.Describe(spec))
	fmt.Printf("schedule length:    %.0f s\n", res.Length)
	fmt.Printf("simulation effort:  %.0f s (%d attempts, %d violations)\n",
		res.Effort, res.Attempts, res.Violations)
	fmt.Printf("max temperature:    %.2f °C (TL %.1f °C)\n", res.MaxTemp, res.EffectiveTL)
	if verbose {
		fmt.Println()
		fmt.Println(res.Describe(spec))
		fmt.Println("per-core solo max temperatures (BCMT):")
		for i, b := range res.BCMT {
			fmt.Printf("  %-12s %7.2f °C\n", spec.Test(i).Name, b)
		}
	}
	return nil
}
