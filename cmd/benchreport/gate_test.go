package main

import (
	"strings"
	"testing"
)

func TestGateMetricsRegressions(t *testing.T) {
	cases := []struct {
		name     string
		old, new map[string]float64
		wantFail []string // substrings of expected failures, empty = pass
	}{
		{
			name:     "numeric regression past tolerance fails",
			old:      map[string]float64{"numeric_ms": 1000},
			new:      map[string]float64{"numeric_ms": 1400},
			wantFail: []string{"numeric_ms"},
		},
		{
			name: "numeric within tolerance passes",
			old:  map[string]float64{"numeric_ms": 1000},
			new:  map[string]float64{"numeric_ms": 1250},
		},
		{
			name: "warm path needs a 2x regression to fail",
			old:  map[string]float64{"warm_ms": 2.4},
			new:  map[string]float64{"warm_ms": 4.1}, // the observed PR7->PR8 swing
		},
		{
			name:     "warm path past 2x fails",
			old:      map[string]float64{"warm_ms": 2.4},
			new:      map[string]float64{"warm_ms": 5.1},
			wantFail: []string{"warm_ms"},
		},
		{
			name: "both sides under the noise floor are skipped",
			old:  map[string]float64{"warm_job_ms": 0.4},
			new:  map[string]float64{"warm_job_ms": 0.95}, // +138%, but sub-floor
		},
		{
			name:     "higher-better metric fails on a drop",
			old:      map[string]float64{"speedup_x": 60},
			new:      map[string]float64{"speedup_x": 30},
			wantFail: []string{"speedup_x"},
		},
		{
			name: "higher-better metric passes on observed noise",
			old:  map[string]float64{"speedup_x": 70},
			new:  map[string]float64{"speedup_x": 47.4}, // the PR7->PR8 swing
		},
		{
			name: "higher-better improvements always pass",
			old:  map[string]float64{"speedup_x": 47},
			new:  map[string]float64{"speedup_x": 200},
		},
		{
			name: "ungated metrics are ignored",
			old:  map[string]float64{"maxT@TL185,STCL100_°C": 100},
			new:  map[string]float64{"maxT@TL185,STCL100_°C": 400},
		},
		{
			name: "metric missing on either side is skipped",
			old:  map[string]float64{},
			new:  map[string]float64{"numeric_ms": 5000},
		},
		{
			name:     "multiple failures all reported",
			old:      map[string]float64{"numeric_ms": 1000, "speedup_x": 60},
			new:      map[string]float64{"numeric_ms": 2000, "speedup_x": 10},
			wantFail: []string{"numeric_ms", "speedup_x"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := gateMetrics("BenchmarkX", tc.old, tc.new)
			if len(got) != len(tc.wantFail) {
				t.Fatalf("failures = %v, want %d matching %v", got, len(tc.wantFail), tc.wantFail)
			}
			for i, sub := range tc.wantFail {
				if !strings.Contains(got[i], sub) {
					t.Errorf("failure[%d] = %q, want it to mention %q", i, got[i], sub)
				}
			}
		})
	}
}

// TestGateEndToEnd drives gate() with full reports: the ns/op gate and the
// metric gates must both contribute failures, and a clean pair must pass.
func TestGateEndToEnd(t *testing.T) {
	oldRep := &Report{Benches: []BenchLine{
		{Name: "BenchmarkGridFactor/n131k/supernodal", NsPerOp: 3e9,
			Metrics: map[string]float64{"numeric_ms": 1500}},
		{Name: "BenchmarkTable1WarmStore", NsPerOp: 5e6,
			Metrics: map[string]float64{"speedup_x": 60, "warm_ms": 2.4, "cold_ms": 160}},
	}}
	clean := &Report{Benches: []BenchLine{
		{Name: "BenchmarkGridFactor/n131k/supernodal", NsPerOp: 3.1e9,
			Metrics: map[string]float64{"numeric_ms": 1550}},
		{Name: "BenchmarkTable1WarmStore", NsPerOp: 6e6,
			Metrics: map[string]float64{"speedup_x": 47, "warm_ms": 4.0, "cold_ms": 190}},
	}}
	if err := gate(oldRep, clean, 0.25, "old", "new"); err != nil {
		t.Fatalf("clean pair failed the gate: %v", err)
	}
	dirty := &Report{Benches: []BenchLine{
		{Name: "BenchmarkGridFactor/n131k/supernodal", NsPerOp: 3.1e9,
			Metrics: map[string]float64{"numeric_ms": 2500}}, // +67% numeric
		{Name: "BenchmarkTable1WarmStore", NsPerOp: 9e6, // +80% ns/op
			Metrics: map[string]float64{"speedup_x": 58, "warm_ms": 2.5, "cold_ms": 170}},
	}}
	err := gate(oldRep, dirty, 0.25, "old", "new")
	if err == nil {
		t.Fatal("dirty pair passed the gate")
	}
	for _, want := range []string{"numeric_ms", "BenchmarkTable1WarmStore"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error does not mention %q:\n%v", want, err)
		}
	}
}
