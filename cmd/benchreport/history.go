package main

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// runHistory loads a sequence of reports (the positional args, or every
// BENCH_*.json in the working directory in numeric order) and prints a
// markdown trend table of tier-1 ns/op across them.
func runHistory(args []string) error {
	paths := args
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
		sortReportPaths(paths)
	}
	if len(paths) < 2 {
		return fmt.Errorf("history needs at least two reports, found %d", len(paths))
	}
	var (
		names []string
		reps  []*Report
	)
	for _, p := range paths {
		rep, err := readReport(p)
		if err != nil {
			return err
		}
		names = append(names, strings.TrimSuffix(filepath.Base(p), ".json"))
		reps = append(reps, rep)
	}
	fmt.Print(historyTable(names, reps))
	return nil
}

// benchNumRe extracts the numeric suffix of BENCH_<n>.json.
var benchNumRe = regexp.MustCompile(`BENCH_(\d+)\.json$`)

// sortReportPaths orders report files by their numeric suffix where present
// (so BENCH_10 follows BENCH_9, not BENCH_1), lexically otherwise.
func sortReportPaths(paths []string) {
	num := func(p string) (int, bool) {
		m := benchNumRe.FindStringSubmatch(p)
		if m == nil {
			return 0, false
		}
		n, err := strconv.Atoi(m[1])
		return n, err == nil
	}
	sort.SliceStable(paths, func(i, j int) bool {
		ni, oki := num(paths[i])
		nj, okj := num(paths[j])
		if oki && okj {
			return ni < nj
		}
		if oki != okj {
			return okj // non-numeric names sort first, in place
		}
		return paths[i] < paths[j]
	})
}

// historyTable renders the trend table: one row per tier-1 benchmark seen in
// any report (union, sorted by name), one ms/op column per report, and a
// final Δ column with the change from the benchmark's first to its last
// appearance. Cells for reports that predate (or dropped) a benchmark show
// "—". Only tier-1 families appear — custom metrics and informational benches
// stay in the JSON.
func historyTable(names []string, reps []*Report) string {
	rows := map[string][]float64{} // name -> ns/op per report, 0 = absent
	for i, rep := range reps {
		for _, b := range rep.Benches {
			if !tier1(b.Name) {
				continue
			}
			r, ok := rows[b.Name]
			if !ok {
				r = make([]float64, len(reps))
				rows[b.Name] = r
			}
			r[i] = b.NsPerOp
		}
	}
	var order []string
	for name := range rows {
		order = append(order, name)
	}
	sort.Strings(order)

	var sb strings.Builder
	sb.WriteString("| benchmark |")
	for _, n := range names {
		sb.WriteString(" " + n + " |")
	}
	sb.WriteString(" Δ first→last |\n|---|")
	for range names {
		sb.WriteString("---:|")
	}
	sb.WriteString("---:|\n")
	for _, name := range order {
		sb.WriteString("| " + name + " |")
		var first, last float64
		for _, v := range rows[name] {
			if v > 0 {
				if first == 0 {
					first = v
				}
				last = v
			}
			sb.WriteString(" " + fmtMS(v) + " |")
		}
		delta := "—"
		if first > 0 && last > 0 && first != last {
			delta = fmt.Sprintf("%+.1f%%", 100*(last/first-1))
		} else if first > 0 {
			delta = "+0.0%"
		}
		sb.WriteString(" " + delta + " |\n")
	}
	return sb.String()
}

// fmtMS renders an ns/op value as milliseconds with a width that keeps both
// microsecond-scale service paths and multi-second factorizations readable.
func fmtMS(ns float64) string {
	if ns <= 0 {
		return "—"
	}
	ms := ns / 1e6
	switch {
	case ms < 1:
		return fmt.Sprintf("%.3f ms", ms)
	case ms < 100:
		return fmt.Sprintf("%.1f ms", ms)
	default:
		return fmt.Sprintf("%.0f ms", ms)
	}
}
