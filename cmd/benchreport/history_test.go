package main

import (
	"strings"
	"testing"
)

func TestSortReportPathsNumeric(t *testing.T) {
	paths := []string{"BENCH_10.json", "BENCH_6.json", "BENCH_9.json", "BENCH_7.json"}
	sortReportPaths(paths)
	want := []string{"BENCH_6.json", "BENCH_7.json", "BENCH_9.json", "BENCH_10.json"}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, paths[i], want[i], paths)
		}
	}
}

func TestHistoryTable(t *testing.T) {
	reps := []*Report{
		{Benches: []BenchLine{
			{Name: "BenchmarkFleetSweep", NsPerOp: 10e6},
			{Name: "BenchmarkGridSteady/n1k", NsPerOp: 0.5e6},
			{Name: "BenchmarkFigure1", NsPerOp: 1e6}, // not tier-1: excluded
		}},
		{Benches: []BenchLine{
			{Name: "BenchmarkFleetSweep", NsPerOp: 8e6},
			{Name: "BenchmarkGridSteady/n1k", NsPerOp: 0.5e6},
			{Name: "BenchmarkJobSubmitWarm", NsPerOp: 0.8e6}, // new this report
		}},
	}
	got := historyTable([]string{"BENCH_7", "BENCH_8"}, reps)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), got)
	}
	if lines[0] != "| benchmark | BENCH_7 | BENCH_8 | Δ first→last |" {
		t.Errorf("header = %q", lines[0])
	}
	// Rows are name-sorted; the improvement and the new-benchmark gap render.
	if want := "| BenchmarkFleetSweep | 10.0 ms | 8.0 ms | -20.0% |"; lines[2] != want {
		t.Errorf("row = %q, want %q", lines[2], want)
	}
	if want := "| BenchmarkGridSteady/n1k | 0.500 ms | 0.500 ms | +0.0% |"; lines[3] != want {
		t.Errorf("row = %q, want %q", lines[3], want)
	}
	if want := "| BenchmarkJobSubmitWarm | — | 0.800 ms | +0.0% |"; lines[4] != want {
		t.Errorf("row = %q, want %q", lines[4], want)
	}
	if strings.Contains(got, "BenchmarkFigure1") {
		t.Error("non-tier-1 benchmark leaked into the history table")
	}
}

// TestHistoryTableMetricMissingFromEarliest: a benchmark family absent from
// the earliest report must anchor its Δ at the first report that *has* it —
// not at the zero of the missing cell (which would render a bogus delta).
func TestHistoryTableMetricMissingFromEarliest(t *testing.T) {
	reps := []*Report{
		{Benches: []BenchLine{
			{Name: "BenchmarkFleetSweep", NsPerOp: 10e6},
		}},
		{Benches: []BenchLine{
			{Name: "BenchmarkFleetSweep", NsPerOp: 10e6},
			{Name: "BenchmarkJobSubmitWarm", NsPerOp: 4e6}, // first appearance
		}},
		{Benches: []BenchLine{
			{Name: "BenchmarkFleetSweep", NsPerOp: 10e6},
			{Name: "BenchmarkJobSubmitWarm", NsPerOp: 3e6},
		}},
	}
	got := historyTable([]string{"BENCH_1", "BENCH_2", "BENCH_3"}, reps)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), got)
	}
	// Δ is 4ms → 3ms = -25%, anchored at BENCH_2, with an em-dash gap in
	// BENCH_1's column.
	if want := "| BenchmarkJobSubmitWarm | — | 4.0 ms | 3.0 ms | -25.0% |"; lines[3] != want {
		t.Errorf("row = %q, want %q", lines[3], want)
	}
	if want := "| BenchmarkFleetSweep | 10.0 ms | 10.0 ms | 10.0 ms | +0.0% |"; lines[2] != want {
		t.Errorf("row = %q, want %q", lines[2], want)
	}
}
