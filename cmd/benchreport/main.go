// Command benchreport runs the repository's key benchmarks and persists the
// results as a machine-readable JSON report (BENCH_<n>.json), or compares a
// fresh run against a committed report and fails on regressions — the CI
// bench gate.
//
// Usage:
//
//	benchreport -out BENCH_6.json                 # run + write a report
//	benchreport -against BENCH_6.json             # run + gate against it
//	benchreport -compare BENCH_5.json BENCH_6.json # gate file vs file, no run
//	benchreport -history                          # markdown trend table over BENCH_*.json
//
// The gate only inspects tier-1 benchmarks (see tier1Prefixes): a fresh
// ns/op more than -maxregress above the committed one fails the gate. Key
// custom metrics (numeric_ms, warm_ms, cold_ms, warm_job_ms, speedup_x,
// ns/query) are gated too, each with its own noise floor and tolerance (see
// metricGates) — service-path latencies swing far more between runs than
// factorization times, so one global threshold fits none of them. Metrics
// outside that list (temperatures, claim flags, spill gauges, ...) ride
// along in the report for human inspection only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// tier1Prefixes are the benchmark families the regression gate enforces —
// the scheduling-service hot paths named in ROADMAP.md. Everything else in a
// report is informational.
var tier1Prefixes = []string{
	"BenchmarkGridFactor/",
	"BenchmarkGridSteady/",
	"BenchmarkGridSteadyBatch",
	"BenchmarkTable1CellGridCold",
	"BenchmarkFleetSweep",
	"BenchmarkTable1WarmStore",
	"BenchmarkJobSubmitWarm",
}

// defaultBench selects exactly the tier-1 families.
const defaultBench = "^(BenchmarkGridFactor|BenchmarkGridSteady|BenchmarkGridSteadyBatch|BenchmarkTable1CellGridCold|BenchmarkFleetSweep|BenchmarkTable1WarmStore|BenchmarkJobSubmitWarm)$"

// Report is the persisted file format.
type Report struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Benchtime string      `json:"benchtime"`
	Benches   []BenchLine `json:"benchmarks"`
}

// BenchLine is one benchmark result. Metrics carries the custom
// b.ReportMetric values (speedup_x, cold_ms, warm_ms, numeric_ms, ...).
type BenchLine struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		bench = flag.String("bench", defaultBench,
			"benchmark selection regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x",
			"go test -benchtime; the tier-1 families are macro-benchmarks (seconds per op), so counted runs beat duration targets")
		out        = flag.String("out", "", "write the fresh run's JSON report here")
		against    = flag.String("against", "", "gate the fresh run against this committed report")
		compare    = flag.Bool("compare", false, "positional args are <old.json> <new.json>; gate file against file without running anything")
		history    = flag.Bool("history", false, "print a markdown trend table over the positional report files (default: BENCH_*.json in order) without running anything")
		maxRegress = flag.Float64("maxregress", 0.25,
			"maximum tolerated tier-1 ns/op regression as a fraction (0.25 = +25%)")
		verbose = flag.Bool("v", false, "stream go test output while running")
	)
	flag.Parse()

	if *history {
		if err := runHistory(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*bench, *benchtime, *out, *against, *compare, *maxRegress, *verbose, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, out, against string, compare bool, maxRegress float64, verbose bool, args []string) error {
	if compare {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two file arguments, got %d", len(args))
		}
		oldRep, err := readReport(args[0])
		if err != nil {
			return err
		}
		newRep, err := readReport(args[1])
		if err != nil {
			return err
		}
		return gate(oldRep, newRep, maxRegress, args[0], args[1])
	}

	rep, err := runBenches(bench, benchtime, verbose)
	if err != nil {
		return err
	}
	if len(rep.Benches) == 0 {
		return fmt.Errorf("no benchmarks matched %q", bench)
	}
	for _, b := range rep.Benches {
		fmt.Printf("%-55s %14.0f ns/op\n", b.Name, b.NsPerOp)
	}
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(rep.Benches))
	}
	if against != "" {
		oldRep, err := readReport(against)
		if err != nil {
			return err
		}
		return gate(oldRep, rep, maxRegress, against, "fresh run")
	}
	return nil
}

// runBenches shells out to go test and parses the benchmark lines.
func runBenches(bench, benchtime string, verbose bool) (*Report, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench", bench,
		"-benchtime", benchtime, "-benchmem", ".")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime,
	}
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if verbose {
			fmt.Println(line)
		}
		if b, ok := parseBenchLine(line); ok {
			rep.Benches = append(rep.Benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		cmd.Wait()
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	sort.Slice(rep.Benches, func(i, j int) bool { return rep.Benches[i].Name < rep.Benches[j].Name })
	return rep, nil
}

// parseBenchLine decodes one testing-package benchmark output line:
//
//	BenchmarkX/sub-8  100  12345 ns/op  64 B/op  2 allocs/op  3.5 speedup_x
//
// The GOMAXPROCS suffix is stripped from the name so reports from hosts with
// different core counts stay comparable by name.
func parseBenchLine(line string) (BenchLine, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return BenchLine{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchLine{}, false
	}
	b := BenchLine{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchLine{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// metricGate is the regression policy for one gated custom metric.
type metricGate struct {
	// floor is the noise cutoff: when old and new are both below it, the
	// metric is too small to compare meaningfully and is skipped.
	floor float64
	// higherBetter flips the comparison for ratio metrics like speedup_x,
	// where a *smaller* fresh value is the regression.
	higherBetter bool
	// maxRegress is the tolerated fractional change in the losing direction.
	maxRegress float64
}

// metricGates lists the custom metrics the gate enforces on tier-1
// benchmarks, with per-metric noise floors and tolerances calibrated from
// the committed BENCH_* history: numeric factorization times repeat within a
// few percent, while the warm service paths (store + HTTP + scheduler) have
// swung ±70% between otherwise-identical runs.
var metricGates = map[string]metricGate{
	"numeric_ms":  {floor: 1, maxRegress: 0.30},
	"cold_ms":     {floor: 20, maxRegress: 0.75},
	"warm_ms":     {floor: 1, maxRegress: 1.0},
	"warm_job_ms": {floor: 1, maxRegress: 1.0},
	"speedup_x":   {floor: 2, higherBetter: true, maxRegress: 0.50},
	"ns/query":    {floor: 1e5, maxRegress: 0.35},
}

// gateMetrics compares the gated custom metrics of one tier-1 benchmark and
// returns failure descriptions. A metric missing from either side is skipped
// (metrics come and go across PRs, like benchmarks do).
func gateMetrics(name string, oldM, newM map[string]float64) []string {
	keys := make([]string, 0, len(newM))
	for k := range newM {
		if _, gated := metricGates[k]; gated {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var failures []string
	for _, k := range keys {
		g := metricGates[k]
		ov, ok := oldM[k]
		if !ok {
			continue
		}
		nv := newM[k]
		if ov < g.floor && nv < g.floor {
			continue // both in the noise
		}
		if ov <= 0 {
			continue
		}
		ratio := nv / ov
		bad := ratio > 1+g.maxRegress
		if g.higherBetter {
			bad = ratio < 1/(1+g.maxRegress)
		}
		if bad {
			failures = append(failures, fmt.Sprintf("%s %s: %.3g -> %.3g (%+.1f%%)",
				name, k, ov, nv, 100*(ratio-1)))
		}
	}
	return failures
}

// tier1 reports whether a benchmark is under the regression gate.
func tier1(name string) bool {
	for _, p := range tier1Prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// gate compares tier-1 ns/op between two reports. Benchmarks present in only
// one report are reported but never fail the gate (families come and go
// across PRs); a tier-1 benchmark in both whose fresh ns/op exceeds the old
// by more than maxRegress fails it.
func gate(oldRep, newRep *Report, maxRegress float64, oldName, newName string) error {
	oldBy := make(map[string]BenchLine, len(oldRep.Benches))
	for _, b := range oldRep.Benches {
		oldBy[b.Name] = b
	}
	var regressed []string
	checked := 0
	for _, nb := range newRep.Benches {
		if !tier1(nb.Name) {
			continue
		}
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("NEW      %-55s %14.0f ns/op (not in %s)\n", nb.Name, nb.NsPerOp, oldName)
			continue
		}
		checked++
		ratio := nb.NsPerOp / ob.NsPerOp
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				nb.Name, ob.NsPerOp, nb.NsPerOp, 100*(ratio-1)))
		}
		if mf := gateMetrics(nb.Name, ob.Metrics, nb.Metrics); len(mf) > 0 {
			status = "REGRESSED"
			regressed = append(regressed, mf...)
		}
		fmt.Printf("%-9s %-55s %14.0f -> %14.0f ns/op (%+.1f%%)\n",
			status, nb.Name, ob.NsPerOp, nb.NsPerOp, 100*(ratio-1))
	}
	if checked == 0 {
		return fmt.Errorf("no tier-1 benchmarks shared between %s and %s", oldName, newName)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d tier-1 regression(s) past the gate thresholds (ns/op +%.0f%%, metrics per metricGates):\n  %s",
			len(regressed), 100*maxRegress, strings.Join(regressed, "\n  "))
	}
	fmt.Printf("bench gate: %d tier-1 benchmarks within +%.0f%% (and metric gates) of %s\n", checked, 100*maxRegress, oldName)
	return nil
}
