// Command experiments regenerates the figures and tables of the DATE'05
// paper plus the ablations catalogued in DESIGN.md.
//
// Usage:
//
//	experiments                 # everything
//	experiments -run fig1       # one artifact: fig1, fig5, table1, claims,
//	                            # weights, ordering, fidelity, baseline, scaling
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		which = flag.String("run", "all",
			"experiment: all, fig1, fig5, table1, claims, weights, ordering, fidelity, baseline, scaling, oracle, gap, gridcheck, gridres")
		parallel = flag.Bool("parallel", false,
			"fan experiment sweeps across GOMAXPROCS goroutines (tables are byte-identical to serial runs)")
		gridres = flag.String("gridres", "",
			"comma-separated grid-resolution ladder for -run gridres (e.g. 32,64,128); "+
				"runs the Table 1 flow per resolution and prints solver backend and factor/solve timings")
	)
	flag.Parse()

	ladder, err := parseGridRes(*gridres)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if err := run(*which, *parallel, ladder); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// parseGridRes parses the -gridres ladder; empty selects the default rungs.
func parseGridRes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{16, 32, 64, 96}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -gridres entry %q (want integers >= 2)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(which string, parallel bool, gridres []int) error {
	wants := func(name string) bool { return which == "all" || which == name }
	ran := false

	if wants("fig1") {
		ran = true
		res, err := experiments.RunFigure1()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	var env *experiments.Env
	needEnv := false
	for _, name := range []string{"fig5", "table1", "claims", "weights", "ordering", "fidelity", "baseline", "oracle", "gap", "gridcheck", "gridres"} {
		if wants(name) {
			needEnv = true
		}
	}
	if needEnv {
		var err error
		env, err = experiments.AlphaEnv()
		if err != nil {
			return err
		}
		env.Parallel = parallel
	}

	if wants("fig5") {
		ran = true
		res, err := experiments.RunFigure5(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("table1") {
		ran = true
		res, err := experiments.RunTable1(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("claims") {
		ran = true
		grid, err := experiments.RunTable1(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.CheckClaims(grid).Render())
	}
	if wants("weights") {
		ran = true
		res, err := experiments.RunWeights(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("ordering") {
		ran = true
		res, err := experiments.RunOrdering(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("fidelity") {
		ran = true
		res, err := experiments.RunFidelity(env, 80, 7)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("baseline") {
		ran = true
		res, err := experiments.RunBaseline(env, 165)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("oracle") {
		ran = true
		res, err := experiments.RunOracleComparison(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("gap") {
		ran = true
		res, err := experiments.RunOptimalityGap(env, []float64{150, 165, 185})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("gridcheck") {
		ran = true
		res, err := experiments.RunGridCheck(env, 32)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("gridres") {
		ran = true
		res, err := experiments.RunGridScale(env, gridres)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("scaling") {
		ran = true
		res, err := experiments.RunScaling([]int{15, 30, 60, 120}, 11, parallel)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	if env != nil {
		hits, misses := env.Oracle.Stats()
		total := hits + misses
		if total > 0 {
			fmt.Printf("oracle cache: %d queries, %d simulated, %d served from cache (%.1f%% hit rate)\n",
				total, misses, hits, 100*float64(hits)/float64(total))
		}
	}
	return nil
}
