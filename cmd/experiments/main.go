// Command experiments regenerates the figures and tables of the DATE'05
// paper plus the ablations catalogued in DESIGN.md.
//
// Usage:
//
//	experiments                 # everything
//	experiments -run fig1       # one artifact: fig1, fig5, table1, claims,
//	                            # weights, ordering, fidelity, baseline, scaling
//	experiments -run fleet -fleet 16 -parallel -cachedir .oracle-cache
//
// With -cachedir every distinct thermal simulation is persisted to a
// content-addressed store, so repeated invocations (any experiment, any
// order) warm-start from disk instead of re-simulating. With -gridoracle N
// session validation runs on an N×N grid-resolution thermal model — the
// simulation-heavy configuration the persistent store pays off most on.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/oraclestore"
	"repro/internal/oraclestore/remote"
	"repro/internal/testspec"
	"repro/internal/thermal"
)

// options carries the flag values into run.
type options struct {
	parallel    bool
	gridres     []int
	orderings   []linalg.Ordering
	factors     []linalg.FactorMode
	panel       linalg.SupernodalOptions
	fillBudget  int
	peakBytes   int64
	spillDir    string
	cacheDir    string
	gridOracle  int
	fleetSize   int
	fleetSeed   int64
	storeNodes  []string
	workerAddrs []string
}

// grid returns the solver options every grid model of this run is built with.
// A zero-valued options (no parsed -factor flag) means FactorAuto.
func (o options) grid() thermal.GridOptions {
	g := thermal.GridOptions{Panel: o.panel, PeakBytesBudget: o.peakBytes, SpillDir: o.spillDir}
	if len(o.factors) > 0 {
		g.Factor = o.factors[0]
	}
	return g
}

func main() {
	var (
		which = flag.String("run", "all",
			"experiment: all, fig1, fig5, table1, claims, weights, ordering, fidelity, baseline, scaling, oracle, gap, gridcheck, gridres, fleet")
		parallel = flag.Bool("parallel", false,
			"fan experiment sweeps across GOMAXPROCS goroutines (tables are byte-identical to serial runs)")
		gridres = flag.String("gridres", "",
			"comma-separated grid-resolution ladder for -run gridres (e.g. 32,64,128); "+
				"runs the Table 1 flow per resolution and prints solver backend and factor/solve timings")
		ordering = flag.String("ordering", "nd",
			"fill-reducing ordering for -run gridres: nd, rcm or both (one ladder row per ordering)")
		fillBudget = flag.Int("fillbudget", 0,
			"factor fill budget (non-zeros) for -run gridres grid models; 0 = default 2^24, "+
				"past it the model falls back to preconditioned CG")
		factor = flag.String("factor", "auto",
			"numeric Cholesky kernel for grid models: auto, supernodal, scalar or both "+
				"(both ladders -run gridres through each kernel; elsewhere it means auto). "+
				"Kernels are bit-identical — this only changes execution strategy")
		supernodal = flag.Bool("supernodal", true,
			"shorthand for -factor scalar when false; kept for scripting symmetry with cmd/thermsim")
		panelWidth = flag.String("panel", "",
			"max supernodal panel width in columns: a positive integer, \"auto\" to micro-calibrate for the host, or empty for the default")
		peakBytes = flag.String("peak-bytes", "",
			"grid factorization peak memory with optional K/M/G suffix, e.g. 2G; "+
				"over it, factor panels spill to disk and stream back during solves (empty: unbounded)")
		spillDir = flag.String("spill-dir", "",
			"directory for out-of-core factor panel files (empty: os.TempDir)")
		relax = flag.Float64("relax", -1,
			"relaxed-amalgamation pad budget as a fraction of a panel's packed entries "+
				"(negative = default 0.10, 0 disables padding)")
		cacheDir = flag.String("cachedir", "",
			"directory of the persistent oracle store; repeated runs warm-start from it across processes")
		gridOracle = flag.Int("gridoracle", 0,
			"validate sessions on an NxN grid-resolution model instead of the block model (0 = block)")
		fleetSize = flag.Int("fleet", 8,
			"scenario count for -run fleet (builtins + seeded random-floorplan ladder)")
		fleetSeed  = flag.Int64("seed", 11, "base seed for the fleet's random scenarios")
		storeNodes = flag.String("storenodes", "",
			"comma-separated thermstore node addresses; the -cachedir store shards reads and writes "+
				"across them by content address (tier 3). A dead node degrades to local-only")
		workers = flag.String("workers", "",
			"comma-separated fleet-worker addresses for -run fleet; scenarios scatter across them "+
				"and the merged table is byte-identical to the local run")
		fleetWorker = flag.String("fleetworker", "",
			"serve as a fleet worker on this listen address (e.g. :9191) instead of running experiments; "+
				"combine with -cachedir and -storenodes so results accumulate in the shared cluster")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	ladder, err := parseGridRes(*gridres)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	orderings, err := parseOrderings(*ordering)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	factors, err := parseFactors(*factor, *supernodal)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	width, err := cliutil.ParsePanelWidth(*panelWidth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -panel:", err)
		os.Exit(1)
	}
	peak, err := cliutil.ParseByteSize(*peakBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -peak-bytes:", err)
		os.Exit(1)
	}

	nodes := splitAddrs(*storeNodes)
	if len(nodes) > 0 && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -storenodes requires -cachedir (the sharded tier backs a local store)")
		os.Exit(1)
	}
	if *fleetWorker != "" {
		if err := serveFleetWorker(*fleetWorker, *cacheDir, nodes); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	// Profiles are finalized before any exit path below: a profile of a
	// *failing* run is precisely when you want readable pprof output, so
	// no os.Exit may come between StartCPUProfile and the stop.
	var cpuFile *os.File
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "experiments: -cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	runErr := run(*which, options{
		parallel:    *parallel,
		gridres:     ladder,
		orderings:   orderings,
		factors:     factors,
		panel:       panelOptions(width, *relax),
		fillBudget:  *fillBudget,
		peakBytes:   peak,
		spillDir:    *spillDir,
		cacheDir:    *cacheDir,
		gridOracle:  *gridOracle,
		fleetSize:   *fleetSize,
		fleetSeed:   *fleetSeed,
		storeNodes:  nodes,
		workerAddrs: splitAddrs(*workers),
	})

	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memProf != "" {
		if err := writeHeapProfile(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -memprofile:", err)
			if runErr == nil {
				os.Exit(1)
			}
		}
	}

	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the heap after a GC into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseOrderings maps the -ordering flag to the ladder's ordering list:
// "nd", "rcm" or "both" (nd first, matching the render's row order).
func parseOrderings(s string) ([]linalg.Ordering, error) {
	switch strings.TrimSpace(s) {
	case "", "nd":
		return []linalg.Ordering{linalg.OrderND}, nil
	case "rcm":
		return []linalg.Ordering{linalg.OrderRCM}, nil
	case "both":
		return []linalg.Ordering{linalg.OrderND, linalg.OrderRCM}, nil
	default:
		return nil, fmt.Errorf("bad -ordering %q (want nd, rcm or both)", s)
	}
}

// parseFactors maps the -factor/-supernodal flags to the kernel list used for
// grid models. "-supernodal=false" is shorthand for "-factor scalar";
// combining it with an explicit conflicting -factor is an error.
func parseFactors(s string, supernodal bool) ([]linalg.FactorMode, error) {
	if strings.TrimSpace(s) == "both" {
		if !supernodal {
			return nil, fmt.Errorf("-factor both conflicts with -supernodal=false")
		}
		return []linalg.FactorMode{linalg.FactorSupernodal, linalg.FactorScalar}, nil
	}
	mode, err := linalg.ParseFactorMode(strings.TrimSpace(s))
	if err != nil {
		return nil, fmt.Errorf("bad -factor %q (want auto, supernodal, scalar or both)", s)
	}
	if !supernodal {
		if mode == linalg.FactorSupernodal {
			return nil, fmt.Errorf("-factor supernodal conflicts with -supernodal=false")
		}
		mode = linalg.FactorScalar
	}
	return []linalg.FactorMode{mode}, nil
}

// panelOptions maps the -panel/-relax knobs onto SupernodalOptions: the flag
// sentinel for "default" is -relax < 0, while SupernodalOptions uses zero for
// default and negatives for "off", so -relax 0 translates to disabling both
// pad budgets.
func panelOptions(width int, relax float64) linalg.SupernodalOptions {
	opts := linalg.SupernodalOptions{MaxPanel: width}
	switch {
	case relax < 0: // default ratio
	case relax == 0:
		opts.RelaxRatio, opts.RelaxZeros = -1, -1
	default:
		opts.RelaxRatio = relax
	}
	return opts
}

// parseGridRes parses the -gridres ladder; empty selects the default rungs.
func parseGridRes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return []int{16, 32, 64, 96}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -gridres entry %q (want integers >= 2)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(which string, opts options) error {
	wants := func(name string) bool { return which == "all" || which == name }
	ran := false

	var store *oraclestore.Store
	if opts.cacheDir != "" {
		var err error
		store, err = openStore(opts.cacheDir, opts.storeNodes)
		if err != nil {
			return err
		}
		defer store.Close()
	}

	if wants("fig1") {
		ran = true
		res, err := experiments.RunFigure1()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	var env *experiments.Env
	needEnv := false
	for _, name := range []string{"fig5", "table1", "claims", "weights", "ordering", "fidelity", "baseline", "oracle", "gap", "gridcheck", "gridres"} {
		if wants(name) {
			needEnv = true
		}
	}
	if needEnv {
		var err error
		env, err = experiments.NewEnvWithOptions(testspec.Alpha21364(), thermal.DefaultPackageConfig(), experiments.EnvOptions{
			Store:   store,
			GridRes: opts.gridOracle,
			Grid:    opts.grid(),
		})
		if err != nil {
			return err
		}
		env.Parallel = opts.parallel
	}

	if wants("fig5") {
		ran = true
		res, err := experiments.RunFigure5(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("table1") {
		ran = true
		res, err := experiments.RunTable1(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("claims") {
		ran = true
		grid, err := experiments.RunTable1(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.CheckClaims(grid).Render())
	}
	if wants("weights") {
		ran = true
		res, err := experiments.RunWeights(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("ordering") {
		ran = true
		res, err := experiments.RunOrdering(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("fidelity") {
		ran = true
		res, err := experiments.RunFidelity(env, 80, 7)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("baseline") {
		ran = true
		res, err := experiments.RunBaseline(env, 165)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("oracle") {
		ran = true
		res, err := experiments.RunOracleComparison(env)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("gap") {
		ran = true
		res, err := experiments.RunOptimalityGap(env, []float64{150, 165, 185})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("gridcheck") {
		ran = true
		res, err := experiments.RunGridCheck(env, 32)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("gridres") {
		ran = true
		res, err := experiments.RunGridScale(env, opts.gridres, experiments.GridScaleOptions{
			Orderings:  opts.orderings,
			FillBudget: opts.fillBudget,
			Factors:    opts.factors,
			Panel:      opts.panel,
			PeakBytes:  opts.peakBytes,
			SpillDir:   opts.spillDir,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("scaling") {
		ran = true
		res, err := experiments.RunScaling([]int{15, 30, 60, 120}, 11, opts.parallel)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if wants("fleet") {
		ran = true
		scens, err := experiments.DefaultFleet(opts.fleetSize, opts.fleetSeed)
		if err != nil {
			return err
		}
		fl := &experiments.Fleet{
			Scenarios: scens,
			Parallel:  opts.parallel,
			Store:     store,
			GridRes:   opts.gridOracle,
			Grid:      opts.grid(),
		}
		var res *experiments.FleetResult
		if len(opts.workerAddrs) > 0 {
			// Coordinator mode: scenarios scatter across worker processes;
			// the local store (if any) stays untouched — each worker brings
			// its own, ideally sharing one -storenodes cluster.
			fl.Store = nil
			res, err = fl.RunScattered(httpBases(opts.workerAddrs), nil)
		} else {
			res, err = fl.Run()
		}
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	if env != nil {
		hits, misses := env.Oracle.Stats()
		total := hits + misses
		if total > 0 {
			fmt.Printf("oracle cache: %d queries, %d distinct, %d served from cache (%.1f%% hit rate)\n",
				total, misses, hits, 100*float64(hits)/float64(total))
		}
		if env.StoreCache != nil {
			sh, sm := env.StoreCache.Stats()
			fmt.Printf("oracle store: %d loaded at open, %d answered from disk, %d simulated and persisted\n",
				env.StoreCache.Loaded(), sh, sm)
		}
	}
	if store != nil && store.HasRemote() {
		// Write-behind: ship what this run grew before the process exits, so
		// the next run — on any machine of the cluster — warm-starts from it.
		if _, err := store.PushRemote(); err != nil {
			return err
		}
		rs := store.RemoteStats()
		fmt.Printf("store cluster: %d fetch hits, %d misses, %d errors; %d records absorbed, %d files pushed (%d push errors)\n",
			rs.FetchHits, rs.FetchMisses, rs.FetchErrors, rs.AbsorbedRecords, rs.PushedFiles, rs.PushErrors)
	}
	return nil
}

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// httpBases gives bare host:port addresses an http scheme, as URLs pass
// through unchanged.
func httpBases(addrs []string) []string {
	out := make([]string, len(addrs))
	for i, a := range addrs {
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		out[i] = strings.TrimRight(a, "/")
	}
	return out
}

// openStore opens the persistent oracle store, attaching the sharded remote
// tier when node addresses were given.
func openStore(dir string, nodes []string) (*oraclestore.Store, error) {
	if len(nodes) == 0 {
		return oraclestore.Open(dir)
	}
	client, err := remote.NewClient(nodes, remote.ClientOptions{})
	if err != nil {
		return nil, err
	}
	return oraclestore.OpenWithOptions(dir, oraclestore.StoreOptions{Remote: client})
}

// serveFleetWorker runs this process as a fleet worker until killed: it
// accepts scattered scenarios over HTTP and answers with their cell rows,
// persisting every simulation to its store (and, with -storenodes, pushing
// them to the shared cluster after each scenario).
func serveFleetWorker(addr, cacheDir string, nodes []string) error {
	fw := &experiments.FleetWorker{
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	if cacheDir != "" {
		store, err := openStore(cacheDir, nodes)
		if err != nil {
			return err
		}
		defer store.Close()
		fw.Store = store
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "experiments: fleet worker listening on %s\n", ln.Addr())
	return http.Serve(ln, fw.Handler())
}
