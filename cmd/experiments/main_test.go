package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration in -short mode")
	}
	// "all" is exercised implicitly by the individual runs; keep the test
	// fast by running the cheap artifacts individually.
	for _, which := range []string{"fig1", "claims", "fidelity", "baseline"} {
		if err := run(which, which == "baseline", nil); err != nil {
			t.Errorf("run(%q): %v", which, err)
		}
	}
}

func TestRunGridResLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("grid ladder in -short mode")
	}
	if err := run("gridres", false, []int{8, 12}); err != nil {
		t.Errorf("run(gridres): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", false, nil); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestParseGridRes(t *testing.T) {
	if _, err := parseGridRes("16, 32,64"); err != nil {
		t.Errorf("valid ladder rejected: %v", err)
	}
	def, err := parseGridRes("  ")
	if err != nil || len(def) == 0 {
		t.Errorf("empty ladder should yield the default rungs, got %v, %v", def, err)
	}
	for _, bad := range []string{"16,x", "1", "-4", "8,,16"} {
		if _, err := parseGridRes(bad); err == nil {
			t.Errorf("parseGridRes(%q) should fail", bad)
		}
	}
}
