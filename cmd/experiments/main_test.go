package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration in -short mode")
	}
	// "all" is exercised implicitly by the individual runs; keep the test
	// fast by running the cheap artifacts individually.
	for _, which := range []string{"fig1", "claims", "fidelity", "baseline"} {
		if err := run(which, which == "baseline"); err != nil {
			t.Errorf("run(%q): %v", which, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", false); err == nil {
		t.Error("unknown experiment should fail")
	}
}
