package main

import (
	"path/filepath"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration in -short mode")
	}
	// "all" is exercised implicitly by the individual runs; keep the test
	// fast by running the cheap artifacts individually.
	for _, which := range []string{"fig1", "claims", "fidelity", "baseline"} {
		if err := run(which, options{parallel: which == "baseline"}); err != nil {
			t.Errorf("run(%q): %v", which, err)
		}
	}
}

func TestRunGridResLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("grid ladder in -short mode")
	}
	orderings, err := parseOrderings("both")
	if err != nil {
		t.Fatal(err)
	}
	if err := run("gridres", options{gridres: []int{8, 12}, orderings: orderings}); err != nil {
		t.Errorf("run(gridres, both orderings): %v", err)
	}
	// A starved fill budget must degrade the ladder to the CG fallback, not
	// fail it.
	if err := run("gridres", options{gridres: []int{8}, fillBudget: 128}); err != nil {
		t.Errorf("run(gridres, fillbudget 128): %v", err)
	}
}

func TestParseOrderings(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int
	}{{"", 1}, {"nd", 1}, {"rcm", 1}, {"both", 2}} {
		got, err := parseOrderings(c.in)
		if err != nil || len(got) != c.want {
			t.Errorf("parseOrderings(%q) = %v, %v (want %d orderings)", c.in, got, err, c.want)
		}
	}
	if _, err := parseOrderings("metis"); err == nil {
		t.Error("parseOrderings should reject unknown names")
	}
}

func TestRunFleetWithStore(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "cache")
	opts := options{fleetSize: 3, fleetSeed: 7, cacheDir: dir, parallel: true}
	if err := run("fleet", opts); err != nil {
		t.Fatalf("cold fleet: %v", err)
	}
	// Warm re-run over the same store.
	if err := run("fleet", opts); err != nil {
		t.Fatalf("warm fleet: %v", err)
	}
}

func TestRunTable1WithCacheDir(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "cache")
	if err := run("table1", options{cacheDir: dir}); err != nil {
		t.Fatalf("cold table1: %v", err)
	}
	if err := run("table1", options{cacheDir: dir}); err != nil {
		t.Fatalf("warm table1: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", options{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestParseGridRes(t *testing.T) {
	if _, err := parseGridRes("16, 32,64"); err != nil {
		t.Errorf("valid ladder rejected: %v", err)
	}
	def, err := parseGridRes("  ")
	if err != nil || len(def) == 0 {
		t.Errorf("empty ladder should yield the default rungs, got %v, %v", def, err)
	}
	for _, bad := range []string{"16,x", "1", "-4", "8,,16"} {
		if _, err := parseGridRes(bad); err == nil {
			t.Errorf("parseGridRes(%q) should fail", bad)
		}
	}
}
