// Command thermserve runs the streaming schedule service: a long-lived HTTP
// server answering thermal-safe test-schedule requests from warm oracle
// tiers.
//
// Usage:
//
//	thermserve -addr :8080 -cachedir /var/cache/thermsched -store-budget 256M
//	thermserve -smoke
//
// Endpoints: POST /v1/schedule, GET /v1/systems, GET /healthz, GET /metrics.
// With -cachedir every distinct session simulation persists to a
// content-addressed store shared across restarts; -store-budget bounds that
// directory with file-level LRU eviction. -smoke starts the server on an
// ephemeral port, issues one cold and one warm request against it, asserts
// the warm one was answered from cache, and exits — the CI health check.
//
// Admission control: -queue-depth bounds how many requests may wait for a
// worker (beyond it the server sheds with 429 + Retry-After), -deadline sets
// the default per-request deadline (clients override with X-Request-Deadline
// or deadline_ms), and -max-systems bounds the live in-RAM system map by
// LRU-dropping idle entries. /healthz reports ok|degraded with store breaker
// state and queue occupancy.
//
// Memory discipline: -peak-bytes caps each grid system's resident
// factorization working set (finished factor panels spill to -spill-dir and
// stream back during solves, bit-identical), and -panel auto micro-calibrates
// the supernodal panel width for the host.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/server"
	"repro/internal/thermal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheDir    = flag.String("cachedir", "", "persistent oracle store directory (empty: in-memory tiers only)")
		storeBudget = flag.String("store-budget", "", "store byte budget with optional K/M/G suffix, e.g. 256M; empty: unbounded")
		storeNodes  = flag.String("storenodes", "", "comma-separated thermstore shard addresses (host:port,...) for the tier-3 cluster; requires -cachedir")
		workers     = flag.Int("workers", 0, "max concurrent schedule generations (0: GOMAXPROCS)")
		queueDepth  = flag.Int("queue-depth", 0, "max requests waiting for a worker before shedding with 429 (0: 1024, negative: unbounded)")
		maxSystems  = flag.Int("max-systems", 0, "max live simulated systems in RAM, LRU-dropping idle ones (0: unbounded)")
		deadline    = flag.Duration("deadline", 0, "default per-request deadline, e.g. 2s (0: none; clients override via X-Request-Deadline or deadline_ms)")
		drainTO     = flag.Duration("drain-timeout", 10*time.Second, "on shutdown, how long running async jobs may finish before being interrupted (journaled for resume; 0: interrupt immediately)")
		peakBytes   = flag.String("peak-bytes", "", "per-system peak factorization memory with optional K/M/G suffix, e.g. 2G; over it, factor panels spill to disk (empty: unbounded)")
		spillDir    = flag.String("spill-dir", "", "directory for out-of-core factor panel files (empty: os.TempDir)")
		panel       = flag.String("panel", "", "supernodal panel width: a positive integer, \"auto\" to micro-calibrate for the host, or empty for the default")
		quiet       = flag.Bool("q", false, "suppress per-request logging")
		smoke       = flag.Bool("smoke", false, "self-check: serve one cold and one warm request plus one async job, then exit")
	)
	flag.Parse()

	budget, err := cliutil.ParseByteSize(*storeBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermserve: -store-budget:", err)
		os.Exit(1)
	}
	peak, err := cliutil.ParseByteSize(*peakBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermserve: -peak-bytes:", err)
		os.Exit(1)
	}
	panelWidth, err := cliutil.ParsePanelWidth(*panel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermserve: -panel:", err)
		os.Exit(1)
	}
	grid := thermal.GridOptions{PeakBytesBudget: peak, SpillDir: *spillDir}
	grid.Panel.MaxPanel = panelWidth
	var nodes []string
	for _, a := range strings.Split(*storeNodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodes = append(nodes, a)
		}
	}
	cfg := server.Config{
		CacheDir:        *cacheDir,
		StoreBudget:     budget,
		StoreNodes:      nodes,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		MaxSystems:      *maxSystems,
		DefaultDeadline: *deadline,
		Grid:            grid,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "thermserve: "+format+"\n", args...)
		}
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "thermserve: smoke failed:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, cfg, *drainTO); err != nil {
		fmt.Fprintln(os.Stderr, "thermserve:", err)
		os.Exit(1)
	}
}

// serve runs the service until SIGINT/SIGTERM, then drains: async jobs get
// drainTimeout to finish (stragglers journal "interrupted" records the next
// start resumes from) before open connections are shut down.
func serve(addr string, cfg server.Config, drainTimeout time.Duration) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "thermserve: listening on %s\n", addr)
		errc <- hs.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "thermserve: draining")
	srv.Drain(drainTimeout)
	fmt.Fprintln(os.Stderr, "thermserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// smokeRequest is the Table 1 anchor cell the self-check poses twice.
var smokeRequest = map[string]any{
	"workload":   "alpha21364",
	"tl_celsius": 165,
	"stcl":       60,
}

// runSmoke starts the service on an ephemeral port, posts the same request
// cold then warm, and fails unless the warm reply comes from the cache tiers
// with an identical schedule.
func runSmoke(cfg server.Config) error {
	if cfg.CacheDir == "" {
		dir, err := os.MkdirTemp("", "thermserve-smoke-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.CacheDir = dir
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	var health server.HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("healthz: decoding body: %v", err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		return fmt.Errorf("healthz: status %d %q", resp.StatusCode, health.Status)
	}

	post := func() (*server.ScheduleResponse, error) {
		body, _ := json.Marshal(smokeRequest)
		resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e server.ErrorResponse
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return nil, fmt.Errorf("status %d: %s %s", resp.StatusCode, e.Error.Code, e.Error.Message)
		}
		var out server.ScheduleResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		return &out, nil
	}

	cold, err := post()
	if err != nil {
		return fmt.Errorf("cold request: %v", err)
	}
	warm, err := post()
	if err != nil {
		return fmt.Errorf("warm request: %v", err)
	}
	if !warm.Cache.SystemWarm {
		return fmt.Errorf("warm request rebuilt the system")
	}
	hits := warm.Cache.Tier1Hits + warm.Cache.Tier2Hits
	misses := warm.Cache.Tier1Misses
	if hits == 0 || float64(hits)/float64(hits+misses) == 0 {
		return fmt.Errorf("warm request hit rate is zero (hits %d, misses %d)", hits, misses)
	}
	if warm.Result.Schedule != cold.Result.Schedule {
		return fmt.Errorf("warm schedule differs from cold:\ncold:\n%s\nwarm:\n%s",
			cold.Result.Schedule, warm.Result.Schedule)
	}
	// Async path: submit the same problem as a job and follow it to done; the
	// result must match the synchronous answers.
	body, _ := json.Marshal(smokeRequest)
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("job submit: %v", err)
	}
	var sub server.JobSubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return fmt.Errorf("job submit: status %d, id %q, err %v", resp.StatusCode, sub.ID, err)
	}
	var job server.JobStatusResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return fmt.Errorf("job poll: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("job poll: decoding body: %v", err)
		}
		if job.State == "done" || job.State == "failed" || job.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %q after 30s", sub.ID, job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != "done" {
		return fmt.Errorf("job %s ended %q: %s", sub.ID, job.State, job.Error)
	}
	var jobResp server.ScheduleResponse
	if err := json.Unmarshal(job.Response, &jobResp); err != nil {
		return fmt.Errorf("job response: %v", err)
	}
	if jobResp.Result.Schedule != cold.Result.Schedule {
		return fmt.Errorf("async schedule differs from sync:\nsync:\n%s\nasync:\n%s",
			cold.Result.Schedule, jobResp.Result.Schedule)
	}

	fmt.Printf("smoke ok: %s cold %.1f ms → warm %.1f ms, warm tier1 %d/%d, schedule %d sessions, async job %s done\n",
		cold.Result.Workload, cold.Timing.TotalMS, warm.Timing.TotalMS,
		warm.Cache.Tier1Hits, warm.Cache.Tier1Hits+warm.Cache.Tier1Misses,
		len(warm.Result.Sessions), sub.ID)
	return nil
}
