package main

import (
	"testing"

	"repro/internal/server"
)

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in      string
		want    int64
		wantErr bool
	}{
		{"", 0, false},
		{"262144", 262144, false},
		{"256K", 256 << 10, false},
		{"256k", 256 << 10, false},
		{"64M", 64 << 20, false},
		{"64MB", 64 << 20, false},
		{"2G", 2 << 30, false},
		{" 16m ", 16 << 20, false},
		{"-1", 0, true},
		{"64X", 0, true},
		{"lots", 0, true},
	}
	for _, tc := range cases {
		got, err := parseByteSize(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseByteSize(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestRunSmoke exercises the CI self-check end to end: ephemeral port, one
// cold and one warm request, cache-tier assertions.
func TestRunSmoke(t *testing.T) {
	if err := runSmoke(server.Config{CacheDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}
