package main

import (
	"testing"

	"repro/internal/server"
)

// TestRunSmoke exercises the CI self-check end to end: ephemeral port, one
// cold and one warm request, cache-tier assertions.
func TestRunSmoke(t *testing.T) {
	if err := runSmoke(server.Config{CacheDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}
