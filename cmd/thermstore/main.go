// Command thermstore runs one shard of the distributed oracle store: an HTTP
// node serving whole record files by content address.
//
// Usage:
//
//	thermstore -dir /var/lib/thermstore -addr :9090
//
// Protocol (see internal/oraclestore/remote):
//
//	GET  /records/{addr}  — the record file for that content address (its
//	                        CRC-valid prefix), or 404 for an unknown key
//	PUT  /records/{addr}  — merge the request body (a whole record file) into
//	                        the node's copy, record-by-record; idempotent
//	GET  /healthz         — liveness
//
// A cluster is just N of these plus clients configured with the same address
// list: the client consistent-hashes each content address to its owning node,
// so nodes never talk to each other and adding capacity means adding nodes to
// every client's list. Clients treat a dead node as a cold shard — local
// stores degrade to local-only for that key range, nothing errors.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/oraclestore/remote"
)

func main() {
	var (
		addr = flag.String("addr", ":9090", "listen address")
		dir  = flag.String("dir", "", "record-file directory (required)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "thermstore: -dir is required")
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermstore:", err)
		os.Exit(1)
	}
	if err := run(ln, *dir, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "thermstore:", err)
		os.Exit(1)
	}
}

// run serves a node on ln until the listener closes — split from main so the
// smoke test can drive a real node on an ephemeral port.
func run(ln net.Listener, dir string, logf func(format string, args ...any)) error {
	node, err := remote.NewNode(dir, logf)
	if err != nil {
		return err
	}
	logf("thermstore: serving %s on %s", dir, ln.Addr())
	return http.Serve(ln, node.Handler())
}
