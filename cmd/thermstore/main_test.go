package main

import (
	"net"
	"net/http"
	"testing"
	"time"
)

// TestRunServesHealthz boots a real node on an ephemeral port through the
// same run() main uses and checks it answers.
func TestRunServesHealthz(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go run(ln, t.TempDir(), t.Logf)
	defer ln.Close()

	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	// An unknown record is a clean 404, proving the records route is wired.
	resp, err = c.Get("http://" + ln.Addr().String() + "/records/" + sixtyFourZeros)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown record = %d, want 404", resp.StatusCode)
	}
}

const sixtyFourZeros = "0000000000000000000000000000000000000000000000000000000000000000"
