package thermalsched_test

import (
	"fmt"
	"log"
	"strings"

	thermalsched "repro"
)

// ExampleSystem_GenerateSchedule runs the paper's Algorithm 1 on the Alpha
// 21364 evaluation workload.
func ExampleSystem_GenerateSchedule() {
	sys, err := thermalsched.NewSystem(thermalsched.AlphaWorkload(), thermalsched.DefaultPackage())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.GenerateSchedule(thermalsched.ScheduleConfig{TL: 185, STCL: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sessions=%d first_try=%v safe=%v\n",
		res.Schedule.NumSessions(), res.Effort == res.Length, res.MaxTemp < 185)
	// Output: sessions=6 first_try=true safe=true
}

// ExampleSystem_CheckSchedule demonstrates the paper's Figure-1 point: a
// power-legal schedule fails a thermal check.
func ExampleSystem_CheckSchedule() {
	sys, err := thermalsched.NewSystem(thermalsched.Figure1Workload(), thermalsched.DefaultPackage())
	if err != nil {
		log.Fatal(err)
	}
	// TS1 = {C2,C3,C4} (indices 1..3): 45 W, legal under a 45 W power cap.
	ts1, err := thermalsched.NewSession(1, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	ts2, err := thermalsched.NewSession(4, 5, 6)
	if err != nil {
		log.Fatal(err)
	}
	rest, err := thermalsched.NewSession(0)
	if err != nil {
		log.Fatal(err)
	}
	sc := thermalsched.NewSchedule(ts1, ts2, rest)
	violations, _, err := sys.CheckSchedule(sc, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("power-legal sessions violating 120°C: %d\n", len(violations))
	// Output: power-legal sessions violating 120°C: 1
}

// ExampleSystem_STC shows the cheap session score the scheduler packs
// against: the dense core pair scores far above the sparse cache pair.
func ExampleSystem_STC() {
	sys, err := thermalsched.NewSystem(thermalsched.AlphaWorkload(), thermalsched.DefaultPackage())
	if err != nil {
		log.Fatal(err)
	}
	fp := sys.Spec().Floorplan()
	intReg, err := fp.IndexOf("IntReg")
	if err != nil {
		log.Fatal(err)
	}
	intExec, err := fp.IndexOf("IntExec")
	if err != nil {
		log.Fatal(err)
	}
	l2l, err := fp.IndexOf("L2Left")
	if err != nil {
		log.Fatal(err)
	}
	l2r, err := fp.IndexOf("L2Right")
	if err != nil {
		log.Fatal(err)
	}
	dense, err := sys.STC([]int{intReg, intExec})
	if err != nil {
		log.Fatal(err)
	}
	sparse, err := sys.STC([]int{l2l, l2r})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense pair scores %.0fx the sparse pair\n", dense/sparse)
	// Output: dense pair scores 5x the sparse pair
}

// ExampleParseFloorplan builds a workload from text formats end to end.
func ExampleParseFloorplan() {
	fp, err := thermalsched.ParseFloorplan(stringsReader(`
A 0.004 0.004 0.000 0.000
B 0.004 0.004 0.004 0.000
`), "two-core")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := thermalsched.ParseTestSpec(stringsReader(`
A 5 10 1
B 5 10 1
`), "two-tests", fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cores, %.0f s sequential\n", spec.NumCores(), spec.TotalTestTime())
	// Output: 2 cores, 2 s sequential
}

// stringsReader is a tiny helper keeping the examples free of extra imports.
func stringsReader(s string) *strings.Reader { return strings.NewReader(s) }
